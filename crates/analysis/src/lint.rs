//! The CSAR source-level lint pass.
//!
//! Walks every workspace `.rs` file and enforces the repo's
//! correctness-critical conventions:
//!
//! * **`unsafe-safety`** — every `unsafe` keyword must be justified by a
//!   `// SAFETY:` comment on the same line or within the three lines
//!   above it.
//! * **`no-unwrap-request-path`** — no `.unwrap()` / `.expect(` in the
//!   request-dispatch paths (`crates/core/src/server.rs` and
//!   `crates/core/src/client/*`), outside `#[cfg(test)]` regions: a
//!   malformed or reordered message must surface as a protocol error,
//!   never a server/client panic.
//! * **`no-alloc-request-path`** — no `.to_vec()` / `Bytes::from(` /
//!   `Vec::new(` in those same request paths: the byte pipeline is
//!   zero-allocation in steady state (in-place folds, gather payloads,
//!   pooled scratch), so a fresh buffer on the request path is either a
//!   regression or a legitimately cold path that belongs in the
//!   `analysis.toml` allowlist with a reason.
//! * **`lock-order-ascending`** — any client file issuing
//!   `Request::ParityReadLock` (the §5.1 parity-lock acquisition) must
//!   carry the ascending-group-order guard
//!   (`windows(2).all(|w| w[0].group < w[1].group)`): acquiring parity
//!   locks lowest-group-first is the protocol's only deadlock defence.
//! * **`todo`** — a TODO/FIXME inventory (reported, never fatal).
//!
//! The pass is line-oriented on purpose: it must stay dependency-free
//! and fast, and the conventions it checks are all expressible at line
//! granularity. Comment text after `//` is ignored when matching code
//! tokens.

use crate::config::Config;
use csar_store::Json;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule identifier (matches the `[lint.<rule>]` config sections).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// One TODO/FIXME inventory entry.
#[derive(Debug, Clone)]
pub struct TodoItem {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The comment text.
    pub text: String,
}

/// Result of a full lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations that survived the allowlist (non-empty ⇒ exit 1).
    pub violations: Vec<Violation>,
    /// TODO/FIXME inventory (informational).
    pub todos: Vec<TodoItem>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Render as the machine-readable `--json` document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("ok", Json::from(self.violations.is_empty())),
            ("files_scanned", Json::from(self.files_scanned as u64)),
            (
                "violations",
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| {
                            Json::obj([
                                ("rule", Json::from(v.rule)),
                                ("file", Json::from(v.file.as_str())),
                                ("line", Json::from(v.line as u64)),
                                ("message", Json::from(v.message.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "todo",
                Json::Arr(
                    self.todos
                        .iter()
                        .map(|t| {
                            Json::obj([
                                ("file", Json::from(t.file.as_str())),
                                ("line", Json::from(t.line as u64)),
                                ("text", Json::from(t.text.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Run every rule over the workspace rooted at `root`.
pub fn run(root: &Path, cfg: &Config) -> Result<LintReport, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut report = LintReport { files_scanned: files.len(), ..Default::default() };
    for rel in &files {
        let text = fs::read_to_string(root.join(rel))
            .map_err(|e| format!("read {}: {e}", rel.display()))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        lint_file(&rel_str, &text, cfg, &mut report);
    }
    Ok(report)
}

/// Recursively collect workspace `.rs` files, skipping build output,
/// VCS metadata and hidden directories.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

/// The code portion of a line with string/char-literal contents blanked
/// out and any `//` comment removed, so tokens inside literals or
/// comments (`"unsafe"`, `'{'`, a URL's `//`) never match a rule.
/// Line-local by design: the workspace style keeps string literals on
/// one line, and a missed multi-line literal only risks a false
/// positive, which the allowlist can waive.
fn code_part(line: &str) -> String {
    split_line(line).0
}

/// Byte offset of the real `//` comment on this line, ignoring `//`
/// sequences inside string or char literals.
fn comment_start(line: &str) -> Option<usize> {
    split_line(line).1
}

fn split_line(line: &str) -> (String, Option<usize>) {
    let bytes = line.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut comment = None;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                // Blank the string literal's contents.
                out.push(b'"');
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += if bytes[i] == b'\\' { 2 } else { 1 };
                    out.push(b' ');
                }
                if i < bytes.len() {
                    out.push(b'"');
                    i += 1;
                }
            }
            b'\'' => {
                // A char literal ('x', '\n', '"'); lifetimes ('a) have
                // no closing quote within 4 bytes and fall through.
                let close = if i + 2 < bytes.len() && bytes[i + 1] == b'\\' { i + 3 } else { i + 2 };
                if close < bytes.len() && bytes[close] == b'\'' {
                    out.extend_from_slice(b"' ");
                    out.resize(out.len() + (close - i - 2), b' ');
                    out.push(b'\'');
                    i = close + 1;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                comment = Some(i);
                break;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    (String::from_utf8_lossy(&out).into_owned(), comment)
}

/// Does `code` contain `word` as a standalone token?
fn has_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(i) = code[start..].find(word) {
        let at = start + i;
        let before_ok =
            at == 0 || !code.as_bytes()[at - 1].is_ascii_alphanumeric() && code.as_bytes()[at - 1] != b'_';
        let after = at + word.len();
        let after_ok = after >= code.len()
            || !code.as_bytes()[after].is_ascii_alphanumeric() && code.as_bytes()[after] != b'_';
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Does the comment carry a `TODO`/`FIXME` marker followed by `:` or
/// `(`? Bare prose mentions of the words are not inventory items.
fn has_open_item_tag(comment: &str) -> bool {
    ["TODO", "FIXME"].iter().any(|tag| {
        comment
            .match_indices(tag)
            .any(|(i, _)| matches!(comment.as_bytes().get(i + tag.len()), Some(b':' | b'(')))
    })
}

/// Line spans (0-based) covered by `#[cfg(test)]` items, tracked by
/// brace depth from the attribute's opening brace.
fn cfg_test_lines(lines: &[&str]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim_start().starts_with("#[cfg(test)]") {
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                in_test[j] = true;
                for b in code_part(lines[j]).bytes() {
                    match b {
                        b'{' => {
                            depth += 1;
                            opened = true;
                        }
                        b'}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

/// Is this file part of a request path for `no-unwrap-request-path`?
/// Covers the core protocol state machines and the live transport's
/// client engine (PR 2: a lost or duplicated reply must surface as
/// `CsarError::Transport`, never a panic).
fn in_request_path(rel: &str) -> bool {
    rel == "crates/core/src/server.rs"
        || rel.starts_with("crates/core/src/client/")
        || rel == "crates/cluster/src/client.rs"
}

/// The textual form of the §5.1 guard `lock-order-ascending` requires.
const ORDER_GUARD: &str = ".group < w[1].group";

fn lint_file(rel: &str, text: &str, cfg: &Config, report: &mut LintReport) {
    let lines: Vec<&str> = text.lines().collect();
    let in_test = cfg_test_lines(&lines);
    let mut push = |rule: &'static str, line: usize, message: String| {
        if !cfg.is_allowed(rule, rel, line) {
            report.violations.push(Violation { rule, file: rel.to_string(), line, message });
        }
    };

    let mut lock_sites: Vec<usize> = Vec::new();
    let mut has_order_guard = false;

    for (idx, raw) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = code_part(raw);

        // unsafe-safety: a SAFETY comment on the same line or within the
        // three preceding lines justifies the unsafe.
        if has_word(&code, "unsafe") && !in_test[idx] {
            let justified = raw.contains("SAFETY:")
                || lines[idx.saturating_sub(3)..idx].iter().any(|l| l.contains("SAFETY:"));
            if !justified {
                push(
                    "unsafe-safety",
                    lineno,
                    "`unsafe` without a `// SAFETY:` comment on or above it".into(),
                );
            }
        }

        // no-unwrap-request-path.
        if in_request_path(rel) && !in_test[idx] {
            for needle in [".unwrap()", ".expect("] {
                if code.contains(needle) {
                    push(
                        "no-unwrap-request-path",
                        lineno,
                        format!(
                            "`{needle}` in a request path; surface a protocol error instead of panicking"
                        ),
                    );
                }
            }
        }

        // no-alloc-request-path: steady-state requests must reuse
        // buffers (in-place folds, gather payloads, pooled scratch);
        // genuinely cold allocation sites go in the allowlist.
        if in_request_path(rel) && !in_test[idx] {
            for needle in [".to_vec()", "Bytes::from(", "Vec::new("] {
                if code.contains(needle) {
                    push(
                        "no-alloc-request-path",
                        lineno,
                        format!(
                            "`{needle}` allocates on a request path; fold in place / gather / pool, \
                             or allowlist the cold path in analysis.toml"
                        ),
                    );
                }
            }
        }

        // lock-order-ascending bookkeeping (client files only: the
        // server *dispatches* ParityReadLock, clients *acquire* it).
        if rel.starts_with("crates/core/src/client/") {
            if code.contains("Request::ParityReadLock") {
                lock_sites.push(lineno);
            }
            if raw.contains(ORDER_GUARD) {
                has_order_guard = true;
            }
        }

        // TODO/FIXME inventory (real comments only; never fatal).
        if let Some(i) = comment_start(raw) {
            let comment = &raw[i..];
            if has_open_item_tag(comment) {
                report.todos.push(TodoItem {
                    file: rel.to_string(),
                    line: lineno,
                    text: comment.trim_start_matches('/').trim().to_string(),
                });
            }
        }
    }

    if !lock_sites.is_empty() && !has_order_guard {
        for line in lock_sites {
            push(
                "lock-order-ascending",
                line,
                format!(
                    "parity-lock acquisition without the §5.1 ascending-group guard \
                     (`windows(2).all(|w| w[0]{ORDER_GUARD})`) in this file"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, text: &str) -> LintReport {
        let cfg = Config::default();
        let mut report = LintReport::default();
        lint_file(rel, text, &cfg, &mut report);
        report
    }

    #[test]
    fn unsafe_without_safety_is_flagged() {
        let r = lint_str("crates/x/src/lib.rs", "fn f() {\n    unsafe { core::hint::unreachable_unchecked() }\n}\n");
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "unsafe-safety");
        assert_eq!(r.violations[0].line, 2);
    }

    #[test]
    fn unsafe_with_safety_above_passes() {
        let r = lint_str(
            "crates/x/src/lib.rs",
            "fn f() {\n    // SAFETY: provably aligned.\n    unsafe { do_it() }\n}\n",
        );
        assert!(r.violations.is_empty());
    }

    #[test]
    fn unsafe_in_doc_comment_is_ignored() {
        let r = lint_str("crates/x/src/lib.rs", "/// This API is not unsafe.\nfn f() {}\n");
        assert!(r.violations.is_empty());
    }

    #[test]
    fn unwrap_flagged_only_in_request_paths_outside_tests() {
        let body = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); }\n}\n";
        assert_eq!(lint_str("crates/core/src/server.rs", body).violations.len(), 1);
        assert_eq!(lint_str("crates/core/src/client/write.rs", body).violations.len(), 1);
        assert_eq!(lint_str("crates/cluster/src/client.rs", body).violations.len(), 1);
        assert!(lint_str("crates/core/src/layout.rs", body).violations.is_empty());
        assert!(lint_str("crates/cluster/src/node.rs", body).violations.is_empty());
    }

    #[test]
    fn expect_is_flagged_too() {
        let r = lint_str("crates/core/src/client/read.rs", "fn f() { x.expect(\"boom\"); }\n");
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains(".expect("));
    }

    #[test]
    fn lock_site_without_guard_is_flagged_and_guard_silences_it() {
        let site = "fn f() { let r = Request::ParityReadLock { hdr, group, intra, len }; }\n";
        let r = lint_str("crates/core/src/client/write.rs", site);
        assert_eq!(r.violations.iter().filter(|v| v.rule == "lock-order-ascending").count(), 1);
        let guarded = format!(
            "fn f() {{\n    debug_assert!(p.windows(2).all(|w| w[0]{ORDER_GUARD}));\n    let r = Request::ParityReadLock {{ hdr, group, intra, len }};\n}}\n"
        );
        let r = lint_str("crates/core/src/client/write.rs", &guarded);
        assert!(r.violations.iter().all(|v| v.rule != "lock-order-ascending"));
    }

    #[test]
    fn todos_are_collected_but_not_fatal() {
        let r = lint_str("crates/x/src/lib.rs", "// TODO: finish\nfn f() {}\n// FIXME(now): bug\n");
        assert!(r.violations.is_empty());
        assert_eq!(r.todos.len(), 2);
    }

    #[test]
    fn todo_in_string_literal_or_prose_is_not_inventory() {
        let r = lint_str(
            "crates/x/src/lib.rs",
            "fn f() { log(\"TODO: not a comment\"); }\n// the TODO inventory itself\n",
        );
        assert!(r.todos.is_empty());
    }

    #[test]
    fn allowlist_suppresses_violations() {
        let cfg = Config::parse("[lint.unsafe-safety]\nallow = [\"crates/x/src/lib.rs:1\"]\n").unwrap();
        let mut report = LintReport::default();
        lint_file("crates/x/src/lib.rs", "unsafe { f() }\n", &cfg, &mut report);
        assert!(report.violations.is_empty());
    }
}
