//! `analysis.toml` — per-rule allowlists for the lint pass.
//!
//! A deliberately tiny TOML subset, read without external crates:
//! `[lint.<rule>]` section headers and single-line string arrays
//! (`allow = ["path", "path:line"]`). Anything else in the file is
//! rejected loudly so typos cannot silently disable a rule.

use std::collections::HashMap;

/// Parsed allowlists: rule name → allowed `path` / `path:line` entries.
#[derive(Debug, Default, Clone)]
pub struct Config {
    allow: HashMap<String, Vec<String>>,
}

impl Config {
    /// Parse the config text. Unknown keys or malformed lines are errors.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section: Option<String> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let rule = name
                    .strip_prefix("lint.")
                    .ok_or_else(|| format!("line {lineno}: section [{name}] is not [lint.<rule>]"))?;
                section = Some(rule.to_string());
                cfg.allow.entry(rule.to_string()).or_default();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {lineno}: expected `key = value`"));
            };
            if key.trim() != "allow" {
                return Err(format!("line {lineno}: unknown key `{}`", key.trim()));
            }
            let Some(rule) = &section else {
                return Err(format!("line {lineno}: `allow` outside a [lint.<rule>] section"));
            };
            let entries = parse_string_array(value.trim())
                .map_err(|e| format!("line {lineno}: {e}"))?;
            cfg.allow.get_mut(rule).expect("section registered").extend(entries);
        }
        Ok(cfg)
    }

    /// Is `path:line` allowlisted for `rule`? Entries match either the
    /// exact `path:line` or the bare path (whole-file waiver).
    pub fn is_allowed(&self, rule: &str, path: &str, line: usize) -> bool {
        let exact = format!("{path}:{line}");
        self.allow
            .get(rule)
            .is_some_and(|list| list.iter().any(|e| e == path || *e == exact))
    }
}

/// Parse `["a", "b"]` (single line, double-quoted, no escapes needed for
/// the path-like entries this file holds).
fn parse_string_array(s: &str) -> Result<Vec<String>, String> {
    let inner = s
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected a [\"...\"] array, got `{s}`"))?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|item| {
            let item = item.trim();
            item.strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .map(str::to_string)
                .ok_or_else(|| format!("expected a quoted string, got `{item}`"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_arrays() {
        let cfg = Config::parse(
            "# comment\n[lint.unsafe-safety]\nallow = [\"a/b.rs\", \"c.rs:7\"]\n\n[lint.todo]\nallow = []\n",
        )
        .unwrap();
        assert!(cfg.is_allowed("unsafe-safety", "a/b.rs", 99));
        assert!(cfg.is_allowed("unsafe-safety", "c.rs", 7));
        assert!(!cfg.is_allowed("unsafe-safety", "c.rs", 8));
        assert!(!cfg.is_allowed("todo", "a/b.rs", 1));
    }

    #[test]
    fn rejects_unknown_shapes() {
        assert!(Config::parse("[other.rule]\n").is_err());
        assert!(Config::parse("[lint.x]\nban = []\n").is_err());
        assert!(Config::parse("allow = []\n").is_err());
        assert!(Config::parse("[lint.x]\nallow = [3]\n").is_err());
    }

    #[test]
    fn unknown_rule_is_never_allowed() {
        let cfg = Config::parse("").unwrap();
        assert!(!cfg.is_allowed("unsafe-safety", "x.rs", 1));
    }
}
