//! `analysis.toml` — per-rule allowlists for the lint pass.
//!
//! A deliberately tiny TOML subset, read without external crates:
//! `[lint.<rule>]` section headers and string arrays
//! (`allow = ["path", "path:line"]`, on one line or spread over
//! several with one entry per line and a closing `]`). Anything else
//! in the file is rejected loudly so typos cannot silently disable a
//! rule.

use std::collections::HashMap;

/// Parsed allowlists: rule name → allowed `path` / `path:line` entries.
#[derive(Debug, Default, Clone)]
pub struct Config {
    allow: HashMap<String, Vec<String>>,
}

impl Config {
    /// Parse the config text. Unknown keys or malformed lines are errors.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section: Option<String> = None;
        let mut lines = text.lines().enumerate();
        while let Some((idx, raw)) = lines.next() {
            let line = raw.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let rule = name
                    .strip_prefix("lint.")
                    .ok_or_else(|| format!("line {lineno}: section [{name}] is not [lint.<rule>]"))?;
                section = Some(rule.to_string());
                cfg.allow.entry(rule.to_string()).or_default();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {lineno}: expected `key = value`"));
            };
            if key.trim() != "allow" {
                return Err(format!("line {lineno}: unknown key `{}`", key.trim()));
            }
            let Some(rule) = &section else {
                return Err(format!("line {lineno}: `allow` outside a [lint.<rule>] section"));
            };
            // A `[` with no closing `]` on the same line opens a
            // multi-line array: gather until the closing bracket.
            let mut value = value.trim().to_string();
            if value.starts_with('[') && !value.ends_with(']') {
                loop {
                    let Some((_, cont)) = lines.next() else {
                        return Err(format!("line {lineno}: unterminated `[` array"));
                    };
                    let cont = cont.trim();
                    if cont.starts_with('#') {
                        continue;
                    }
                    value.push_str(cont);
                    if cont.ends_with(']') {
                        break;
                    }
                }
            }
            let entries = parse_string_array(&value)
                .map_err(|e| format!("line {lineno}: {e}"))?;
            cfg.allow.get_mut(rule).expect("section registered").extend(entries);
        }
        Ok(cfg)
    }

    /// Is `path:line` allowlisted for `rule`? Entries match either the
    /// exact `path:line` or the bare path (whole-file waiver).
    pub fn is_allowed(&self, rule: &str, path: &str, line: usize) -> bool {
        let exact = format!("{path}:{line}");
        self.allow
            .get(rule)
            .is_some_and(|list| list.iter().any(|e| e == path || *e == exact))
    }
}

/// Parse `["a", "b"]` (double-quoted, trailing comma tolerated, no
/// escapes needed for the path-like entries this file holds).
fn parse_string_array(s: &str) -> Result<Vec<String>, String> {
    let inner = s
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected a [\"...\"] array, got `{s}`"))?;
    let inner = inner.trim().trim_end_matches(',');
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|item| {
            let item = item.trim();
            item.strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .map(str::to_string)
                .ok_or_else(|| format!("expected a quoted string, got `{item}`"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_arrays() {
        let cfg = Config::parse(
            "# comment\n[lint.unsafe-safety]\nallow = [\"a/b.rs\", \"c.rs:7\"]\n\n[lint.todo]\nallow = []\n",
        )
        .unwrap();
        assert!(cfg.is_allowed("unsafe-safety", "a/b.rs", 99));
        assert!(cfg.is_allowed("unsafe-safety", "c.rs", 7));
        assert!(!cfg.is_allowed("unsafe-safety", "c.rs", 8));
        assert!(!cfg.is_allowed("todo", "a/b.rs", 1));
    }

    #[test]
    fn parses_multiline_arrays_with_trailing_comma() {
        let cfg = Config::parse(
            "[lint.no-alloc-request-path]\nallow = [\n    \"a.rs:3\",\n    # why: cold\n    \"b.rs\",\n]\n",
        )
        .unwrap();
        assert!(cfg.is_allowed("no-alloc-request-path", "a.rs", 3));
        assert!(cfg.is_allowed("no-alloc-request-path", "b.rs", 42));
        assert!(Config::parse("[lint.x]\nallow = [\n\"a\",\n").is_err(), "unterminated array");
    }

    #[test]
    fn rejects_unknown_shapes() {
        assert!(Config::parse("[other.rule]\n").is_err());
        assert!(Config::parse("[lint.x]\nban = []\n").is_err());
        assert!(Config::parse("allow = []\n").is_err());
        assert!(Config::parse("[lint.x]\nallow = [3]\n").is_err());
    }

    #[test]
    fn unknown_rule_is_never_allowed() {
        let cfg = Config::parse("").unwrap();
        assert!(!cfg.is_allowed("unsafe-safety", "x.rs", 1));
    }
}
