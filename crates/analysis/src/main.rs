//! `csar-analysis` — first-party static analysis and model checking.
//!
//! ```text
//! csar-analysis lint  [--root DIR] [--config FILE] [--json]
//! csar-analysis check [--max N] [--json]
//! ```
//!
//! `lint` walks the workspace sources enforcing the CSAR conventions
//! (SAFETY-commented `unsafe`, panic-free request paths, the §5.1
//! ascending lock-order guard) with allowlists from `analysis.toml`;
//! `check` exhaustively model-checks the parity-lock protocol. Both
//! exit non-zero on violations, so `scripts/tier1.sh` can gate on them.

mod config;
mod lint;
mod model;

use config::Config;
use csar_store::Json;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage("missing subcommand");
    };
    match cmd.as_str() {
        "lint" => cmd_lint(rest),
        "check" => cmd_check(rest),
        other => usage(&format!("unknown subcommand `{other}`")),
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: csar-analysis lint [--root DIR] [--config FILE] [--json]");
    eprintln!("       csar-analysis check [--max N] [--json]");
    ExitCode::from(2)
}

/// Load `path`, or the default `<root>/analysis.toml` (absence of the
/// default is fine; an unreadable explicit path is not).
fn load_config(root: &std::path::Path, path: Option<PathBuf>) -> Result<Config, String> {
    let (p, required) = match path {
        Some(p) => (p, true),
        None => (root.join("analysis.toml"), false),
    };
    match std::fs::read_to_string(&p) {
        Ok(text) => Config::parse(&text).map_err(|e| format!("{}: {e}", p.display())),
        Err(e) if required => Err(format!("read {}: {e}", p.display())),
        Err(_) => Ok(Config::default()),
    }
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--config" => match it.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage("--config needs a value"),
            },
            "--json" => json = true,
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }
    let cfg = match load_config(&root, config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match lint::run(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report.to_json().to_pretty());
    } else {
        for v in &report.violations {
            println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
        println!(
            "lint: {} file(s), {} violation(s), {} TODO/FIXME note(s)",
            report.files_scanned,
            report.violations.len(),
            report.todos.len()
        );
        for t in &report.todos {
            println!("  note: {}:{}: {}", t.file, t.line, t.text);
        }
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut max: u64 = 2_000_000;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--max" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => max = v,
                None => return usage("--max needs an integer value"),
            },
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }
    let reports: Vec<model::ScenarioReport> =
        model::suite().iter().map(|s| model::explore(s, max)).collect();
    let all_ok = reports.iter().all(|r| r.ok);
    let total: u64 = reports.iter().map(|r| r.interleavings).sum();
    if json {
        let doc = Json::obj([
            ("ok", Json::from(all_ok)),
            ("total_interleavings", Json::from(total)),
            ("scenarios", Json::Arr(reports.iter().map(model::report_json).collect())),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        for r in &reports {
            let verdict = if r.ok { "ok" } else { "FAIL" };
            let note = if r.truncated { "  (truncated by --max)" } else { "" };
            println!(
                "check: {:<38} {:>8} interleavings  {} violation(s)  [{verdict}]{note}",
                r.name,
                r.interleavings,
                r.violations.len()
            );
            for v in &r.violations {
                println!("    {}: {} (schedule {:?})", v.property, v.detail, v.schedule);
            }
        }
        println!("check: {total} interleavings across {} scenario(s)", reports.len());
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
