//! End-to-end tests of the `csar-analysis` binary: exit-code contract
//! (0 clean / 1 violations / 2 usage errors), JSON output shape, the
//! seeded-violation fixture, and the model checker's interleaving floor.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    // crates/analysis -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn run(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_csar-analysis"))
        .args(args)
        .current_dir(workspace_root())
        .output()
        .expect("spawn csar-analysis");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn lint_passes_on_the_workspace() {
    let (code, stdout, stderr) = run(&["lint"]);
    assert_eq!(code, Some(0), "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("0 violation(s)"), "{stdout}");
}

#[test]
fn lint_json_reports_ok_and_counts() {
    let (code, stdout, _) = run(&["lint", "--json"]);
    assert_eq!(code, Some(0));
    let doc = csar_store::Json::parse(&stdout).expect("valid JSON");
    assert_eq!(doc.get("ok").as_bool(), Some(true));
    assert!(doc.get("files_scanned").as_u64().unwrap_or(0) >= 80);
    assert!(doc.get("violations").is_array());
}

#[test]
fn lint_fails_on_a_seeded_violation() {
    let dir = std::env::temp_dir().join("csar_analysis_seeded");
    let src = dir.join("src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(
        src.join("bad.rs"),
        "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
    )
    .unwrap();
    let (code, stdout, _) = run(&["lint", "--root", dir.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("unsafe-safety"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lint_allowlist_waives_the_seeded_violation() {
    let dir = std::env::temp_dir().join("csar_analysis_waived");
    let src = dir.join("src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(src.join("bad.rs"), "pub fn f() {\n    unsafe { g() }\n}\n").unwrap();
    std::fs::write(
        dir.join("analysis.toml"),
        "[lint.unsafe-safety]\nallow = [\"src/bad.rs:2\"]\n",
    )
    .unwrap();
    let (code, stdout, _) = run(&["lint", "--root", dir.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lint_rejects_a_missing_explicit_config() {
    let (code, _, stderr) = run(&["lint", "--config", "/nonexistent/analysis.toml"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn check_passes_and_meets_the_interleaving_floor() {
    let (code, stdout, stderr) = run(&["check", "--json"]);
    assert_eq!(code, Some(0), "stdout:\n{stdout}\nstderr:\n{stderr}");
    let doc = csar_store::Json::parse(&stdout).expect("valid JSON");
    assert_eq!(doc.get("ok").as_bool(), Some(true));
    assert!(
        doc.get("total_interleavings").as_u64().unwrap_or(0) >= 1_000,
        "interleaving floor not met: {stdout}"
    );
    // Both self-test scenarios must report their planted violations.
    let scenarios = doc.get("scenarios").as_array().expect("scenarios array");
    for name in ["selftest_descending_order_deadlocks", "selftest_nolock_write_hole"] {
        let s = scenarios
            .iter()
            .find(|s| s.get("name").as_str() == Some(name))
            .unwrap_or_else(|| panic!("missing scenario {name}"));
        assert!(
            !s.get("violations").as_array().unwrap().is_empty(),
            "{name} found no violation"
        );
    }
}

#[test]
fn bad_flags_exit_with_usage_error() {
    for args in [
        &["lint", "--bogus"][..],
        &["check", "--max", "not-a-number"][..],
        &["frobnicate"][..],
        &[][..],
    ] {
        let (code, _, stderr) = run(args);
        assert_eq!(code, Some(2), "args {args:?}");
        assert!(stderr.contains("usage"), "args {args:?}: {stderr}");
    }
}
