//! Causal tracing primitives: IDs, contexts, span records and trees.
//!
//! One client operation owns one [`TraceId`]. Every piece of timed work
//! done on the op's behalf — planning, queueing on the transport,
//! request round trips, server-side queue/lock/service time, parity
//! XOR, delivery back into the driver — is one [`TraceSpan`] tagged
//! with that trace ID and a parent [`SpanId`], so the flat span records
//! reassemble into one causal tree per op ([`build_trees`]).
//!
//! Propagation is by value: a [`TraceCtx`] (16 bytes, `Copy`) rides in
//! every [`csar-core` `ReqHeader`](https://docs.rs) and fits inside the
//! protocol's fixed 64-byte wire header, so enabling tracing does not
//! change simulated wire sizes. Servers never allocate IDs: their child
//! spans use [`derived_span`], a deterministic mix of the parent span
//! ID and the phase, which keeps simulator traces bit-identical across
//! replays (the sim allocates client-side IDs from its own counter).
//!
//! Timestamps are nanoseconds since an epoch chosen by the recorder:
//! the cluster start `Instant` on a live deployment (one shared epoch
//! for client and server threads, so spans from both sides nest on one
//! timeline), the virtual clock in the simulator (deterministic).

use csar_store::{FromJson, Json, JsonError, ToJson};
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies one traced client operation. Nonzero when allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace. `SpanId(0)` means "no parent".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The "no parent" sentinel.
    pub const NONE: SpanId = SpanId(0);
}

/// The trace context propagated on the wire: which trace a request
/// belongs to and which span its server-side children hang under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// The owning operation's trace.
    pub trace: TraceId,
    /// Parent span for work done on behalf of this request.
    pub span: SpanId,
}

/// The phase taxonomy (DESIGN.md §15). Client-side phases are recorded
/// by the completion engine, server-side phases by the executor that
/// owns the server's clock (the node thread on a live cluster, the
/// virtual clock in the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Root span: one whole client operation (aux = bytes).
    Op,
    /// Driver planning (the `Begin` poll).
    Plan,
    /// Submission queue wait: enqueue → transmit.
    Submit,
    /// Head-of-line wait for a per-server window slot.
    WindowStall,
    /// One request attempt, transmit → reply receipt (aux = server).
    WireRtt,
    /// Server inbound-queue wait: arrival → dispatch (aux = server).
    SrvQueue,
    /// §5.1 parity-lock park: queued → woken by the unlock (aux = server).
    LockWait,
    /// Server service time, dispatch → reply produced (aux = server).
    Service,
    /// Client-side parity XOR / reconstruction compute (aux = bytes).
    Xor,
    /// Reply handed back into the driver (the completion poll).
    Deliver,
    /// An attempt that exhausted its deadline (aux = server). Children
    /// of the timed-out attempt never arrive; this span is the flight
    /// recorder's stall attribution.
    Timeout,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = Phase::ALL.len();
    /// Every phase, in slot order.
    pub const ALL: [Phase; 11] = [
        Phase::Op,
        Phase::Plan,
        Phase::Submit,
        Phase::WindowStall,
        Phase::WireRtt,
        Phase::SrvQueue,
        Phase::LockWait,
        Phase::Service,
        Phase::Xor,
        Phase::Deliver,
        Phase::Timeout,
    ];

    /// The stable wire/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Op => "op",
            Phase::Plan => "plan",
            Phase::Submit => "submit",
            Phase::WindowStall => "window_stall",
            Phase::WireRtt => "wire_rtt",
            Phase::SrvQueue => "srv_queue",
            Phase::LockWait => "lock_wait",
            Phase::Service => "service",
            Phase::Xor => "xor",
            Phase::Deliver => "deliver",
            Phase::Timeout => "timeout",
        }
    }

    /// Phase by its stable name.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// One flat causal span record: what the trace ring stores, what rides
/// piggybacked on replies, and what the Chrome exporter consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// The owning trace.
    pub trace: TraceId,
    /// This span's ID.
    pub span: SpanId,
    /// Parent span, [`SpanId::NONE`] for the op root.
    pub parent: SpanId,
    /// What kind of work the span covers.
    pub phase: Phase,
    /// Start, nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Phase-specific auxiliary value (server ID or bytes).
    pub aux: u64,
}

impl TraceSpan {
    /// Exclusive end, saturating (a torn or clamped record can never
    /// place its start after its end — see `MetricsRegistry::reset`).
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh process-unique trace ID (live clusters; the
/// simulator allocates from its own counter for replay determinism).
pub fn next_trace_id() -> TraceId {
    TraceId(NEXT_TRACE.fetch_add(1, Ordering::Relaxed))
}

/// Allocate a fresh process-unique span ID.
pub fn next_span_id() -> SpanId {
    SpanId(NEXT_SPAN.fetch_add(1, Ordering::Relaxed))
}

/// Deterministically derive a child span ID from its parent and phase.
///
/// Servers (and any recorder without an ID allocator) use this: each
/// request attempt carries a unique parent span ID, and an attempt has
/// at most one child per server-side phase, so `(parent, phase)` is
/// unique within a trace. The SplitMix64 finalizer spreads the result
/// far away from the small sequential allocator IDs.
pub fn derived_span(parent: SpanId, phase: Phase) -> SpanId {
    let mut z = parent.0 ^ ((phase as u64 + 1) << 56) ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    SpanId((z ^ (z >> 31)) | (1 << 63))
}

impl ToJson for TraceSpan {
    fn to_json(&self) -> Json {
        Json::obj([
            ("trace", Json::U64(self.trace.0)),
            ("span", Json::U64(self.span.0)),
            ("parent", Json::U64(self.parent.0)),
            ("phase", Json::from(self.phase.name())),
            ("start_ns", Json::U64(self.start_ns)),
            ("dur_ns", Json::U64(self.dur_ns)),
            ("aux", Json::U64(self.aux)),
        ])
    }
}

impl FromJson for TraceSpan {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let phase = j
            .field("phase")?
            .as_str()
            .and_then(Phase::from_name)
            .ok_or_else(|| JsonError("unknown trace phase".into()))?;
        Ok(TraceSpan {
            trace: TraceId(j.u64_field("trace")?),
            span: SpanId(j.u64_field("span")?),
            parent: SpanId(j.u64_field("parent")?),
            phase,
            start_ns: j.u64_field("start_ns")?,
            dur_ns: j.u64_field("dur_ns")?,
            aux: j.u64_field("aux")?,
        })
    }
}

/// One node of a reassembled causal tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    /// The span at this node.
    pub span: TraceSpan,
    /// Child spans, in start order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Total spans in this subtree (the node itself included).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(TraceNode::size).sum::<usize>()
    }

    /// Depth-first walk.
    pub fn walk(&self, f: &mut impl FnMut(&TraceNode)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }
}

impl ToJson for TraceNode {
    fn to_json(&self) -> Json {
        let mut obj = match self.span.to_json() {
            Json::Obj(pairs) => pairs,
            _ => unreachable!("TraceSpan serializes to an object"),
        };
        obj.push(("children".to_string(), Json::Arr(self.children.iter().map(ToJson::to_json).collect())));
        Json::Obj(obj)
    }
}

/// Reassemble flat span records into causal trees, one per trace,
/// ordered by root start time. A span whose parent is absent from the
/// input (e.g. its attempt timed out before the piggyback arrived, or
/// the ring wrapped past it) becomes a root of its own partial tree —
/// nothing is dropped.
pub fn build_trees(spans: &[TraceSpan]) -> Vec<TraceNode> {
    use std::collections::HashMap;
    let present: HashMap<(TraceId, SpanId), usize> =
        spans.iter().enumerate().map(|(i, s)| ((s.trace, s.span), i)).collect();
    let mut children: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match (s.parent != SpanId::NONE)
            .then(|| present.get(&(s.trace, s.parent)))
            .flatten()
            // A self-parenting record (corrupt input) must not recurse.
            .filter(|&&p| p != i)
        {
            Some(&p) => children.entry(p).or_default().push(i),
            None => roots.push(i),
        }
    }
    fn assemble(i: usize, spans: &[TraceSpan], children: &HashMap<usize, Vec<usize>>) -> TraceNode {
        let mut kids: Vec<TraceNode> = children
            .get(&i)
            .map(|c| c.iter().map(|&k| assemble(k, spans, children)).collect())
            .unwrap_or_default();
        kids.sort_by_key(|n| (n.span.start_ns, n.span.span));
        TraceNode { span: spans[i], children: kids }
    }
    let mut trees: Vec<TraceNode> = roots.into_iter().map(|i| assemble(i, spans, &children)).collect();
    trees.sort_by_key(|n| (n.span.start_ns, n.span.trace, n.span.span));
    trees
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(trace: u64, span: u64, parent: u64, phase: Phase, start: u64, dur: u64) -> TraceSpan {
        TraceSpan {
            trace: TraceId(trace),
            span: SpanId(span),
            parent: SpanId(parent),
            phase,
            start_ns: start,
            dur_ns: dur,
            aux: 0,
        }
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        assert_ne!(a.0, 0);
        let s = next_span_id();
        assert_ne!(s, SpanId::NONE);
    }

    #[test]
    fn derived_spans_are_stable_and_distinct_per_phase() {
        let p = SpanId(42);
        assert_eq!(derived_span(p, Phase::SrvQueue), derived_span(p, Phase::SrvQueue));
        assert_ne!(derived_span(p, Phase::SrvQueue), derived_span(p, Phase::Service));
        assert_ne!(derived_span(p, Phase::SrvQueue), derived_span(SpanId(43), Phase::SrvQueue));
        // High bit keeps derived IDs out of the sequential allocator's range.
        assert!(derived_span(p, Phase::LockWait).0 >= 1 << 63);
    }

    #[test]
    fn span_json_round_trips() {
        let s = TraceSpan {
            trace: TraceId(7),
            span: SpanId(9),
            parent: SpanId(3),
            phase: Phase::LockWait,
            start_ns: 1000,
            dur_ns: 250,
            aux: 4,
        };
        let j = s.to_json().to_pretty();
        let back = TraceSpan::from_json(&Json::parse(&j).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn trees_reassemble_with_siblings_in_start_order() {
        let spans = vec![
            sp(1, 1, 0, Phase::Op, 0, 100),
            sp(1, 3, 1, Phase::WireRtt, 20, 30), // second attempt
            sp(1, 2, 1, Phase::WireRtt, 5, 10),  // first attempt
            sp(1, 4, 2, Phase::Service, 8, 4),
            sp(2, 9, 0, Phase::Op, 50, 10),
        ];
        let trees = build_trees(&spans);
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].span.trace, TraceId(1));
        assert_eq!(trees[0].size(), 4);
        // Both attempts are siblings under the root, earliest first.
        let kids: Vec<u64> = trees[0].children.iter().map(|c| c.span.span.0).collect();
        assert_eq!(kids, vec![2, 3]);
        assert_eq!(trees[0].children[0].children[0].span.phase, Phase::Service);
        assert_eq!(trees[1].span.trace, TraceId(2));
    }

    #[test]
    fn orphan_spans_become_partial_roots() {
        let spans = vec![sp(1, 5, 99, Phase::Service, 10, 5)];
        let trees = build_trees(&spans);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].span.span, SpanId(5));
    }

    #[test]
    fn end_ns_saturates() {
        let s = sp(1, 1, 0, Phase::Op, u64::MAX - 5, 100);
        assert_eq!(s.end_ns(), u64::MAX);
        assert!(s.start_ns <= s.end_ns());
    }
}
