//! # csar-obs — first-party observability for the CSAR engines
//!
//! A hermetic, std-only metrics and tracing subsystem. Everything the
//! running system records goes through one type, [`MetricsRegistry`]:
//!
//! * **Counters** ([`Ctr`]) — monotonically increasing event counts,
//!   sharded across cache-line-padded atomic arrays so concurrent
//!   recorders (server threads, client ops, the cleaner) never contend
//!   on a line.
//! * **Gauges** ([`Gauge`]) — instantaneous levels (queue depth, parked
//!   lock waiters, requests in flight), one atomic each.
//! * **Histograms** ([`Hist`]) — log2-bucketed latency distributions
//!   with exact count and sum, so a snapshot can report p50/p99-ish
//!   bucket boundaries and the true mean.
//! * **Span events** ([`SpanKind`]) — a fixed-size ring of recent
//!   per-operation events (start, duration, one auxiliary value such as
//!   bytes moved), the "why was this op slow" breadcrumb trail.
//!
//! The hot path is a relaxed `enabled` load plus one `fetch_add`: no
//! locks, no branches into allocation, zero heap traffic steady-state —
//! the `no-alloc-request-path` lint stays satisfied with recording
//! compiled into the request path. Disabling a registry
//! ([`MetricsRegistry::set_enabled`]) turns every record call into the
//! bare load-and-return, which is what the `BENCH_obs.json` ablation
//! measures against.
//!
//! A registry freezes into a [`Snapshot`]: plain vectors of named
//! values that serialize to JSON (the `GetStats` protocol reply and the
//! `stats` binary's output) and [`Snapshot::merge`] across servers into
//! a cluster-wide view.
//!
//! On top of the aggregate metrics sits **causal tracing** (the
//! [`trace`] module): per-operation [`trace::TraceSpan`] records land
//! in a second fixed-size ring, gated by an independent `tracing` flag
//! that defaults *off*. With tracing disabled,
//! [`MetricsRegistry::record_trace`] is a single relaxed load — the
//! request path stays allocation-free and inside the PR-4 overhead
//! budget; with tracing enabled the recording itself is still
//! wait-free and allocation-free (callers that *assemble* trees
//! allocate, off the hot path).

pub mod trace;

use csar_store::{FromJson, Json, JsonError, ToJson};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;
use trace::{Phase, SpanId, TraceId, TraceSpan};

// ---------------------------------------------------------------------------
// Metric identifiers
// ---------------------------------------------------------------------------

macro_rules! metric_enum {
    ($(#[$doc:meta])* $name:ident { $($(#[$vdoc:meta])* $variant:ident => $label:literal,)+ }) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum $name {
            $($(#[$vdoc])* $variant,)+
        }

        impl $name {
            /// Number of variants (slot-array length).
            pub const COUNT: usize = [$($name::$variant,)+].len();
            /// Every variant, in slot order.
            pub const ALL: [$name; Self::COUNT] = [$($name::$variant,)+];

            /// The stable wire/snapshot name.
            pub fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $label,)+
                }
            }
        }
    };
}

metric_enum! {
    /// Monotonic event counters.
    Ctr {
        /// Requests a server accepted.
        SrvRequests => "srv_requests",
        /// Replies a server produced (== requests when nothing is parked).
        SrvReplies => "srv_replies",
        /// Bytes through the in-place data stream (reads + writes).
        SrvDataBytes => "srv_data_bytes",
        /// Bytes through the mirror stream.
        SrvMirrorBytes => "srv_mirror_bytes",
        /// Bytes through the parity stream.
        SrvParityBytes => "srv_parity_bytes",
        /// Bytes through the overflow log stream.
        SrvOverflowBytes => "srv_overflow_bytes",
        /// `ReadLatest` spans that found at least one live overflow run.
        SrvOverflowHits => "srv_overflow_hits",
        /// `ReadLatest` spans served entirely from in-place data.
        SrvOverflowMisses => "srv_overflow_misses",
        /// Parity-lock grants (§5.1).
        SrvLockAcquisitions => "srv_lock_acquisitions",
        /// Parity-lock requests that had to queue behind a holder.
        SrvLockContended => "srv_lock_contended",
        /// Conditional overflow invalidations declined because the
        /// table's generation advanced (a writer raced the cleaner).
        SrvInvalidationsDeferred => "srv_invalidations_deferred",
        /// Whole parity groups written by the write planner.
        WrWholeGroups => "wr_whole_groups",
        /// Partial groups that took the RAID5 read-modify-write.
        WrRmwGroups => "wr_rmw_groups",
        /// Partial groups appended to the Hybrid overflow logs.
        WrOverflowPartials => "wr_overflow_partials",
        /// Spans reconstructed from redundancy during degraded reads.
        RdDegradedRecons => "rd_degraded_recons",
        /// Requests the transport engine transmitted (retries included).
        EngIssued => "eng_issued",
        /// Replies delivered to a live in-flight request.
        EngDelivered => "eng_delivered",
        /// Transmissions abandoned because the engine retried them.
        EngRetriedAbandoned => "eng_retried_abandoned",
        /// Transmissions that exhausted the deadline with no retry left.
        EngTimeouts => "eng_timeouts",
        /// Transmissions still in flight when their op finished (the op
        /// failed for another reason first).
        EngAbandoned => "eng_abandoned",
        /// Times an op had to wait for a per-server window slot.
        EngWindowStalls => "eng_window_stalls",
        /// Parity groups the cleaner examined for live overflow.
        CleanerGroupsScanned => "cleaner_groups_scanned",
        /// Parity groups the cleaner actually rewrote in place.
        CleanerGroupsRewritten => "cleaner_groups_rewritten",
        /// Rewritten groups whose overflow reclaim was deferred to the
        /// next pass because a writer raced the rewrite.
        CleanerGroupsDeferred => "cleaner_groups_deferred",
        /// Overflow bytes returned to RAID5-level storage.
        CleanerBytesReclaimed => "cleaner_bytes_reclaimed",
        /// Completed cleaning passes.
        CleanerPasses => "cleaner_passes",
        /// Parity groups the scrubber verified.
        ScrubGroupsChecked => "scrub_groups_checked",
        /// Mirror blocks the scrubber verified.
        ScrubMirrorsChecked => "scrub_mirrors_checked",
    }
}

metric_enum! {
    /// Instantaneous levels.
    Gauge {
        /// Requests queued on a server's inbound channel (including the
        /// one being served).
        SrvQueueDepth => "srv_queue_depth",
        /// Lock requests parked behind a parity-lock holder.
        SrvParkedWaiters => "srv_parked_waiters",
        /// Requests currently in flight from a client engine.
        EngInFlight => "eng_in_flight",
    }
}

metric_enum! {
    /// Log2-bucketed latency distributions (values in nanoseconds).
    Hist {
        /// Whole client write operations.
        OpWriteNs => "op_write_ns",
        /// Whole client read operations.
        OpReadNs => "op_read_ns",
        /// §5.1 parity lock-read round trips (lock wait + parity read).
        LockWaitNs => "lock_wait_ns",
        /// Per-request round trips, all request classes.
        ReqRttNs => "req_rtt_ns",
        /// Time ops spent stalled on a full per-server window.
        WindowStallNs => "window_stall_ns",
    }
}

metric_enum! {
    /// Span event classes.
    SpanKind {
        /// One client write op.
        Write => "write",
        /// One client read op.
        Read => "read",
        /// One group rewritten by the §6.7 cleaner.
        CleanerGroup => "cleaner_group",
        /// One scrub pass.
        Scrub => "scrub",
    }
}

fn ctr_by_name(name: &str) -> Option<Ctr> {
    Ctr::ALL.into_iter().find(|c| c.name() == name)
}

// ---------------------------------------------------------------------------
// Registry internals
// ---------------------------------------------------------------------------

/// Counter shards: power of two, picked per thread.
const SHARDS: usize = 8;
/// Histogram buckets: bucket `i` holds values with `floor(log2(v)) + 1
/// == i` (bucket 0 is exactly zero), so bucket `i` spans
/// `[2^(i-1), 2^i)`.
const HIST_BUCKETS: usize = 64;
/// Span ring capacity (events kept). Public so tests and tooling can
/// assert exact wraparound behaviour.
pub const SPAN_RING: usize = 1024;
/// Trace ring capacity ([`trace::TraceSpan`] records kept). A traced
/// whole-group write on a wide layout produces a few hundred spans, so
/// this holds the last handful of ops — enough for `GetStats` scrapes
/// and the flight recorder's server-side view.
pub const TRACE_RING: usize = 4096;

#[repr(align(64))]
struct Shard {
    counters: [AtomicU64; Ctr::COUNT],
}

struct HistCell {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

struct SpanSlot {
    /// `SpanKind as usize + 1`; 0 marks an empty slot.
    kind: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
    aux: AtomicU64,
}

struct TraceSlot {
    /// `Phase as usize + 1`; 0 marks an empty slot. Stored last so a
    /// concurrent reader never observes a half-written slot as live.
    phase: AtomicU64,
    trace: AtomicU64,
    span: AtomicU64,
    parent: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
    aux: AtomicU64,
}

/// The sharded, lock-free metrics registry.
///
/// One instance lives in every `IoServer`, one cluster-wide instance in
/// the client transport, and one process [`global`] serves the pure
/// client-side drivers (which have no handle to pass a registry
/// through). All recording is wait-free; `snapshot` is the only
/// operation that allocates.
pub struct MetricsRegistry {
    enabled: AtomicBool,
    /// Independent gate for causal tracing; defaults off.
    tracing: AtomicBool,
    shards: Box<[Shard]>,
    gauges: [AtomicU64; Gauge::COUNT],
    hists: Box<[HistCell]>,
    spans: Box<[SpanSlot]>,
    span_head: AtomicUsize,
    traces: Box<[TraceSlot]>,
    trace_head: AtomicUsize,
    epoch: Instant,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.enabled())
            .field("srv_requests", &self.counter(Ctr::SrvRequests))
            .field("eng_issued", &self.counter(Ctr::EngIssued))
            .finish_non_exhaustive()
    }
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn shard_index() -> usize {
    MY_SHARD.with(|c| {
        let mut v = c.get();
        if v == usize::MAX {
            v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed);
            c.set(v);
        }
        v & (SHARDS - 1)
    })
}

impl MetricsRegistry {
    /// A fresh, enabled registry with all metrics at zero.
    pub fn new() -> Self {
        fn zeroed<const N: usize>() -> [AtomicU64; N] {
            std::array::from_fn(|_| AtomicU64::new(0))
        }
        MetricsRegistry {
            enabled: AtomicBool::new(true),
            tracing: AtomicBool::new(false),
            shards: (0..SHARDS).map(|_| Shard { counters: zeroed() }).collect(),
            gauges: zeroed(),
            hists: (0..Hist::COUNT)
                .map(|_| HistCell { count: AtomicU64::new(0), sum: AtomicU64::new(0), buckets: zeroed() })
                .collect(),
            spans: (0..SPAN_RING)
                .map(|_| SpanSlot {
                    kind: AtomicU64::new(0),
                    start_ns: AtomicU64::new(0),
                    dur_ns: AtomicU64::new(0),
                    aux: AtomicU64::new(0),
                })
                .collect(),
            span_head: AtomicUsize::new(0),
            traces: (0..TRACE_RING)
                .map(|_| TraceSlot {
                    phase: AtomicU64::new(0),
                    trace: AtomicU64::new(0),
                    span: AtomicU64::new(0),
                    parent: AtomicU64::new(0),
                    start_ns: AtomicU64::new(0),
                    dur_ns: AtomicU64::new(0),
                    aux: AtomicU64::new(0),
                })
                .collect(),
            trace_head: AtomicUsize::new(0),
            epoch: Instant::now(),
        }
    }

    /// Turn recording on or off. Off turns every record call into a
    /// single relaxed load — the metrics-off side of the ablation.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn causal tracing on or off, independently of the aggregate
    /// metrics gate. Off (the default) turns [`Self::record_trace`]
    /// into a single relaxed load, keeping the request path on the
    /// PR-3/PR-4 zero-allocation budget.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
    }

    /// Whether causal tracing is on.
    pub fn tracing_enabled(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Add 1 to a counter.
    #[inline]
    pub fn inc(&self, c: Ctr) {
        self.add(c, 1);
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&self, c: Ctr, n: u64) {
        if !self.enabled() {
            return;
        }
        self.shards[shard_index()].counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current counter value (summed over shards).
    pub fn counter(&self, c: Ctr) -> u64 {
        self.shards.iter().map(|s| s.counters[c as usize].load(Ordering::Relaxed)).sum()
    }

    /// Set a gauge to an absolute level.
    #[inline]
    pub fn gauge_set(&self, g: Gauge, v: u64) {
        if !self.enabled() {
            return;
        }
        self.gauges[g as usize].store(v, Ordering::Relaxed);
    }

    /// Raise a gauge by `n`.
    #[inline]
    pub fn gauge_add(&self, g: Gauge, n: u64) {
        if !self.enabled() {
            return;
        }
        self.gauges[g as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Lower a gauge by `n` (saturating at zero).
    #[inline]
    pub fn gauge_sub(&self, g: Gauge, n: u64) {
        if !self.enabled() {
            return;
        }
        let cell = &self.gauges[g as usize];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current gauge level.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize].load(Ordering::Relaxed)
    }

    /// Record one histogram observation.
    #[inline]
    pub fn observe(&self, h: Hist, v: u64) {
        if !self.enabled() {
            return;
        }
        let cell = &self.hists[h as usize];
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(v, Ordering::Relaxed);
        cell.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a span event that started at `start` and just finished.
    #[inline]
    pub fn span(&self, kind: SpanKind, start: Instant, aux: u64) {
        if !self.enabled() {
            return;
        }
        let dur = start.elapsed().as_nanos() as u64;
        let start_ns = start
            .checked_duration_since(self.epoch)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let i = self.span_head.fetch_add(1, Ordering::Relaxed) % SPAN_RING;
        let slot = &self.spans[i];
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur, Ordering::Relaxed);
        slot.aux.store(aux, Ordering::Relaxed);
        slot.kind.store(kind as u64 + 1, Ordering::Relaxed);
    }

    /// Record one causal trace span into the trace ring. Wait-free and
    /// allocation-free; a single relaxed load when tracing is off.
    #[inline]
    pub fn record_trace(&self, s: &TraceSpan) {
        if !self.tracing_enabled() {
            return;
        }
        let i = self.trace_head.fetch_add(1, Ordering::Relaxed) % TRACE_RING;
        let slot = &self.traces[i];
        slot.trace.store(s.trace.0, Ordering::Relaxed);
        slot.span.store(s.span.0, Ordering::Relaxed);
        slot.parent.store(s.parent.0, Ordering::Relaxed);
        slot.start_ns.store(s.start_ns, Ordering::Relaxed);
        slot.dur_ns.store(s.dur_ns, Ordering::Relaxed);
        slot.aux.store(s.aux, Ordering::Relaxed);
        slot.phase.store(s.phase as u64 + 1, Ordering::Relaxed);
    }

    /// The most recent trace spans (at most [`TRACE_RING`]), oldest
    /// first. Allocates; never called on the request path.
    pub fn trace_spans(&self) -> Vec<TraceSpan> {
        let head = self.trace_head.load(Ordering::Relaxed);
        let filled = head.min(TRACE_RING);
        let oldest = head - filled;
        let mut out: Vec<TraceSpan> = (0..filled)
            .filter_map(|i| {
                let slot = &self.traces[(oldest + i) % TRACE_RING];
                let phase = slot.phase.load(Ordering::Relaxed);
                if phase == 0 || phase as usize > Phase::COUNT {
                    return None;
                }
                let start_ns = slot.start_ns.load(Ordering::Relaxed);
                Some(TraceSpan {
                    trace: TraceId(slot.trace.load(Ordering::Relaxed)),
                    span: SpanId(slot.span.load(Ordering::Relaxed)),
                    parent: SpanId(slot.parent.load(Ordering::Relaxed)),
                    phase: Phase::ALL[(phase - 1) as usize],
                    start_ns,
                    // Same torn-slot clamp as aggregate spans: the
                    // computed end can never wrap around before the
                    // start.
                    dur_ns: slot.dur_ns.load(Ordering::Relaxed).min(u64::MAX - start_ns),
                    aux: slot.aux.load(Ordering::Relaxed),
                })
            })
            .collect();
        out.sort_by_key(|s| (s.start_ns, s.span));
        out
    }

    /// Reset every metric to zero (spans and trace spans included).
    /// Gauges too: callers re-establish levels on their next transition.
    ///
    /// # Concurrency with `snapshot`
    ///
    /// `reset` is not atomic with respect to concurrent recorders or a
    /// concurrent [`Self::snapshot`]: a snapshot racing a reset may see
    /// a mix of cleared and still-populated slots, and a racing
    /// recorder may leave a slot whose fields were written around the
    /// reset (a *torn* slot — e.g. a fresh `start_ns` paired with a
    /// stale `dur_ns` from before the ring wrapped). Two invariants
    /// are guaranteed regardless:
    ///
    /// * a slot is only reported once its `kind`/`phase` tag is
    ///   nonzero, and `reset` clears tags first, so a cleared slot is
    ///   skipped rather than reported as zeros; and
    /// * span times are stored as `(start_ns, dur_ns)` — never as an
    ///   absolute end — and `snapshot` clamps `dur_ns` to
    ///   `u64::MAX - start_ns`, so a reported span can never place its
    ///   start after its (saturating) end, even when torn.
    ///
    /// `reset_snapshot_race_never_inverts_span_times` pins this.
    pub fn reset(&self) {
        for s in self.shards.iter() {
            for c in &s.counters {
                c.store(0, Ordering::Relaxed);
            }
        }
        for g in &self.gauges {
            g.store(0, Ordering::Relaxed);
        }
        for h in self.hists.iter() {
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
        for s in self.spans.iter() {
            s.kind.store(0, Ordering::Relaxed);
        }
        self.span_head.store(0, Ordering::Relaxed);
        for t in self.traces.iter() {
            t.phase.store(0, Ordering::Relaxed);
        }
        self.trace_head.store(0, Ordering::Relaxed);
    }

    /// Freeze the registry's current state into a snapshot. The only
    /// allocating operation on the type; never called on the request
    /// path.
    pub fn snapshot(&self) -> Snapshot {
        let counters = Ctr::ALL
            .into_iter()
            .map(|c| (c.name().to_string(), self.counter(c)))
            .filter(|(_, v)| *v > 0)
            .collect();
        let gauges = Gauge::ALL
            .into_iter()
            .map(|g| (g.name().to_string(), self.gauge(g)))
            .filter(|(_, v)| *v > 0)
            .collect();
        let hists = Hist::ALL
            .into_iter()
            .filter_map(|h| {
                let cell = &self.hists[h as usize];
                let count = cell.count.load(Ordering::Relaxed);
                if count == 0 {
                    return None;
                }
                let buckets = cell
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let n = b.load(Ordering::Relaxed);
                        (n > 0).then_some((i as u32, n))
                    })
                    .collect();
                Some(HistSnapshot {
                    name: h.name().to_string(),
                    count,
                    sum: cell.sum.load(Ordering::Relaxed),
                    buckets,
                })
            })
            .collect();
        let head = self.span_head.load(Ordering::Relaxed);
        let filled = head.min(SPAN_RING);
        let oldest = head - filled;
        let mut spans: Vec<SpanEvent> = (0..filled)
            .filter_map(|i| {
                // Oldest-first walk of the ring.
                let slot = &self.spans[(oldest + i) % SPAN_RING];
                let kind = slot.kind.load(Ordering::Relaxed);
                if kind == 0 {
                    return None;
                }
                let start_ns = slot.start_ns.load(Ordering::Relaxed);
                Some(SpanEvent {
                    kind: SpanKind::ALL[(kind - 1) as usize].name().to_string(),
                    start_ns,
                    // Clamp so a torn slot (see `reset`) can never
                    // report an end that wraps before its start.
                    dur_ns: slot.dur_ns.load(Ordering::Relaxed).min(u64::MAX - start_ns),
                    aux: slot.aux.load(Ordering::Relaxed),
                })
            })
            .collect();
        spans.sort_by_key(|s| s.start_ns);
        Snapshot { counters, gauges, hists, spans, traces: self.trace_spans() }
    }
}

#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        // Clamp: the top bucket absorbs everything >= 2^62.
        (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// The process-global registry. The pure client drivers (`WriteDriver`,
/// `ReadDriver`) are handle-free state machines, so their planning
/// counters land here; executors with their own registry (servers, the
/// cluster transport) keep theirs separate and merge at snapshot time.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// One frozen histogram: exact count/sum plus the non-empty log2
/// buckets as `(bucket index, count)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// The [`Hist`] name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Sparse `(bucket, count)`; bucket `i > 0` spans `[2^(i-1), 2^i)`.
    pub buckets: Vec<(u32, u64)>,
}

impl HistSnapshot {
    /// Mean observed value.
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.count.max(1) as f64
    }

    /// Upper bound of the highest non-empty bucket (a p100-ish figure).
    pub fn max_bucket_bound(&self) -> u64 {
        match self.buckets.last() {
            Some(&(0, _)) | None => 0,
            Some(&(i, _)) => 1u64 << i.min(63),
        }
    }
}

/// One span event as frozen into a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// The [`SpanKind`] name.
    pub kind: String,
    /// Start, nanoseconds since the recording registry's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Kind-specific auxiliary value (bytes moved, group number, …).
    pub aux: u64,
}

/// A frozen, mergeable, JSON-serializable view of a registry — what
/// `GetStats` returns and the `stats` binary prints.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` for every non-zero counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` for every non-zero gauge.
    pub gauges: Vec<(String, u64)>,
    /// Every histogram with at least one observation.
    pub hists: Vec<HistSnapshot>,
    /// Recent span events, oldest first.
    pub spans: Vec<SpanEvent>,
    /// Recent causal trace spans (the extended `GetStats` surface),
    /// oldest first; empty unless tracing was enabled.
    pub traces: Vec<TraceSpan>,
}

impl Snapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// Gauge level by name (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// Histogram by name.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Fold `other` into `self`: counters and gauges add, histograms
    /// add bucket-wise, span lists concatenate (re-sorted by start).
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        for h in &other.hists {
            match self.hists.iter_mut().find(|mine| mine.name == h.name) {
                Some(mine) => {
                    mine.count += h.count;
                    mine.sum += h.sum;
                    for &(b, n) in &h.buckets {
                        match mine.buckets.iter_mut().find(|(mb, _)| *mb == b) {
                            Some((_, mn)) => *mn += n,
                            None => mine.buckets.push((b, n)),
                        }
                    }
                    mine.buckets.sort_by_key(|&(b, _)| b);
                }
                None => self.hists.push(h.clone()),
            }
        }
        self.spans.extend(other.spans.iter().cloned());
        self.spans.sort_by_key(|s| s.start_ns);
        self.traces.extend(other.traces.iter().copied());
        self.traces.sort_by_key(|s| (s.start_ns, s.span));
    }

    /// The engine-side balance invariant: every transmitted request
    /// must end in exactly one of delivered, retried-abandoned,
    /// timed-out, or abandoned-at-finish.
    pub fn engine_balanced(&self) -> bool {
        self.counter(Ctr::EngIssued.name())
            == self.counter(Ctr::EngDelivered.name())
                + self.counter(Ctr::EngRetriedAbandoned.name())
                + self.counter(Ctr::EngTimeouts.name())
                + self.counter(Ctr::EngAbandoned.name())
    }
}

fn pairs_to_json(pairs: &[(String, u64)]) -> Json {
    Json::Obj(pairs.iter().map(|(n, v)| (n.clone(), Json::U64(*v))).collect())
}

fn pairs_from_json(j: &Json, what: &str) -> Result<Vec<(String, u64)>, JsonError> {
    j.as_object()
        .ok_or_else(|| JsonError(format!("{what} must be an object")))?
        .iter()
        .map(|(n, v)| {
            let v = v.as_u64().ok_or_else(|| JsonError(format!("{what}.{n} is not a u64")))?;
            Ok((n.clone(), v))
        })
        .collect()
}

impl ToJson for Snapshot {
    fn to_json(&self) -> Json {
        let hists = Json::Arr(
            self.hists
                .iter()
                .map(|h| {
                    Json::obj([
                        ("name", Json::from(h.name.as_str())),
                        ("count", Json::U64(h.count)),
                        ("sum", Json::U64(h.sum)),
                        (
                            "buckets",
                            Json::Arr(
                                h.buckets
                                    .iter()
                                    .map(|&(b, n)| Json::Arr(vec![Json::U64(b as u64), Json::U64(n)]))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let spans = Json::Arr(
            self.spans
                .iter()
                .map(|s| {
                    Json::obj([
                        ("kind", Json::from(s.kind.as_str())),
                        ("start_ns", Json::U64(s.start_ns)),
                        ("dur_ns", Json::U64(s.dur_ns)),
                        ("aux", Json::U64(s.aux)),
                    ])
                })
                .collect(),
        );
        Json::obj([
            ("counters", pairs_to_json(&self.counters)),
            ("gauges", pairs_to_json(&self.gauges)),
            ("hists", hists),
            ("spans", spans),
            ("traces", Json::Arr(self.traces.iter().map(ToJson::to_json).collect())),
        ])
    }
}

impl FromJson for Snapshot {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let counters = pairs_from_json(j.field("counters")?, "counters")?;
        let gauges = pairs_from_json(j.field("gauges")?, "gauges")?;
        let hists = j
            .field("hists")?
            .as_array()
            .ok_or_else(|| JsonError("hists must be an array".into()))?
            .iter()
            .map(|h| {
                let name = h
                    .field("name")?
                    .as_str()
                    .ok_or_else(|| JsonError("hist name must be a string".into()))?
                    .to_string();
                let buckets = h
                    .field("buckets")?
                    .as_array()
                    .ok_or_else(|| JsonError("hist buckets must be an array".into()))?
                    .iter()
                    .map(|b| {
                        let bucket = b
                            .at(0)
                            .as_u64()
                            .ok_or_else(|| JsonError("bucket index must be a u64".into()))?;
                        let n = b
                            .at(1)
                            .as_u64()
                            .ok_or_else(|| JsonError("bucket count must be a u64".into()))?;
                        Ok((bucket as u32, n))
                    })
                    .collect::<Result<_, JsonError>>()?;
                Ok(HistSnapshot { name, count: h.u64_field("count")?, sum: h.u64_field("sum")?, buckets })
            })
            .collect::<Result<_, JsonError>>()?;
        let spans = j
            .field("spans")?
            .as_array()
            .ok_or_else(|| JsonError("spans must be an array".into()))?
            .iter()
            .map(|s| {
                Ok(SpanEvent {
                    kind: s
                        .field("kind")?
                        .as_str()
                        .ok_or_else(|| JsonError("span kind must be a string".into()))?
                        .to_string(),
                    start_ns: s.u64_field("start_ns")?,
                    dur_ns: s.u64_field("dur_ns")?,
                    aux: s.u64_field("aux")?,
                })
            })
            .collect::<Result<_, JsonError>>()?;
        // Tolerate snapshots from before the tracing extension.
        let traces = match j.field("traces") {
            Ok(t) => t
                .as_array()
                .ok_or_else(|| JsonError("traces must be an array".into()))?
                .iter()
                .map(TraceSpan::from_json)
                .collect::<Result<_, JsonError>>()?,
            Err(_) => Vec::new(),
        };
        Ok(Snapshot { counters, gauges, hists, spans, traces })
    }
}

/// Look up a counter identifier by its snapshot name (used by tooling
/// that folds snapshots back into typed queries).
pub fn counter_named(name: &str) -> Option<Ctr> {
    ctr_by_name(name)
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_threads() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        reg.inc(Ctr::SrvRequests);
                        reg.add(Ctr::SrvDataBytes, 3);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter(Ctr::SrvRequests), 4000);
        assert_eq!(reg.counter(Ctr::SrvDataBytes), 12000);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = MetricsRegistry::new();
        reg.set_enabled(false);
        reg.inc(Ctr::SrvRequests);
        reg.gauge_add(Gauge::EngInFlight, 5);
        reg.observe(Hist::OpWriteNs, 100);
        reg.span(SpanKind::Write, Instant::now(), 1);
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.hists.is_empty());
        assert!(snap.spans.is_empty());
        reg.set_enabled(true);
        reg.inc(Ctr::SrvRequests);
        assert_eq!(reg.counter(Ctr::SrvRequests), 1);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1); // clamped into the top bucket
        let reg = MetricsRegistry::new();
        for v in [0, 1, 3, 1000, 1_000_000] {
            reg.observe(Hist::OpReadNs, v);
        }
        let snap = reg.snapshot();
        let h = snap.hist("op_read_ns").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1_001_004);
        assert_eq!(h.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 5);
        assert!((h.mean() - 200_200.8).abs() < 1e-6);
    }

    #[test]
    fn gauge_sub_saturates() {
        let reg = MetricsRegistry::new();
        reg.gauge_add(Gauge::SrvQueueDepth, 2);
        reg.gauge_sub(Gauge::SrvQueueDepth, 5);
        assert_eq!(reg.gauge(Gauge::SrvQueueDepth), 0);
    }

    #[test]
    fn span_ring_wraps_and_keeps_latest() {
        let reg = MetricsRegistry::new();
        let t0 = Instant::now();
        for i in 0..(SPAN_RING + 10) as u64 {
            reg.span(SpanKind::Read, t0, i);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.spans.len(), SPAN_RING);
        assert!(snap.spans.iter().all(|s| s.kind == "read"));
        // The most recent aux values survive the wrap.
        assert!(snap.spans.iter().any(|s| s.aux == (SPAN_RING + 9) as u64));
        assert!(!snap.spans.iter().any(|s| s.aux == 5));
    }

    /// Satellite regression for the PR-4 ring walk: overfill the ring
    /// and demand *exactly* the most recent `SPAN_RING` events, in
    /// start order, with nothing older surviving.
    #[test]
    fn span_ring_wraparound_returns_exactly_the_latest_in_start_order() {
        let reg = MetricsRegistry::new();
        const EXTRA: usize = 100;
        for i in 0..(SPAN_RING + EXTRA) as u64 {
            // Each span gets its own capture point, so start_ns is
            // non-decreasing in record order.
            reg.span(SpanKind::Read, Instant::now(), i);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.spans.len(), SPAN_RING);
        let aux: Vec<u64> = snap.spans.iter().map(|s| s.aux).collect();
        let want: Vec<u64> = (EXTRA as u64..(SPAN_RING + EXTRA) as u64).collect();
        assert_eq!(aux, want, "snapshot must keep exactly the newest SPAN_RING events, oldest first");
        assert!(snap.spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }

    /// Satellite: a snapshot racing `reset` (and racing recorders) must
    /// never report a span whose start lies after its end — the torn
    /// slot clamp documented on [`MetricsRegistry::reset`].
    #[test]
    fn reset_snapshot_race_never_inverts_span_times() {
        use std::sync::atomic::AtomicBool as StopFlag;
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        reg.set_tracing(true);
        let stop = std::sync::Arc::new(StopFlag::new(false));
        let mut workers = Vec::new();
        for w in 0..2 {
            let reg = std::sync::Arc::clone(&reg);
            let stop = std::sync::Arc::clone(&stop);
            workers.push(std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    reg.span(SpanKind::Write, Instant::now(), i);
                    reg.record_trace(&TraceSpan {
                        trace: TraceId(1),
                        span: SpanId(i + 1),
                        parent: SpanId::NONE,
                        phase: Phase::Op,
                        start_ns: i,
                        dur_ns: u64::MAX - (i % 7), // hostile: forces the clamp to matter
                        aux: w,
                    });
                    if i % 64 == 0 {
                        reg.reset();
                    }
                    i += 1;
                }
            }));
        }
        for _ in 0..200 {
            let snap = reg.snapshot();
            for s in &snap.spans {
                let end = s.start_ns.checked_add(s.dur_ns).expect("span end overflowed past u64");
                assert!(s.start_ns <= end);
            }
            for t in &snap.traces {
                let end = t.start_ns.checked_add(t.dur_ns).expect("trace end overflowed past u64");
                assert!(t.start_ns <= end && t.end_ns() == end);
            }
        }
        stop.store(true, Ordering::Relaxed);
        for t in workers {
            t.join().unwrap();
        }
    }

    #[test]
    fn tracing_is_off_by_default_and_gated() {
        let reg = MetricsRegistry::new();
        let s = TraceSpan {
            trace: TraceId(1),
            span: SpanId(2),
            parent: SpanId::NONE,
            phase: Phase::WireRtt,
            start_ns: 10,
            dur_ns: 5,
            aux: 3,
        };
        assert!(!reg.tracing_enabled());
        reg.record_trace(&s);
        assert!(reg.trace_spans().is_empty());
        assert!(reg.snapshot().traces.is_empty());
        reg.set_tracing(true);
        reg.record_trace(&s);
        assert_eq!(reg.trace_spans(), vec![s]);
        assert_eq!(reg.snapshot().traces, vec![s]);
        reg.reset();
        assert!(reg.trace_spans().is_empty());
    }

    #[test]
    fn trace_ring_wraps_and_keeps_latest() {
        let reg = MetricsRegistry::new();
        reg.set_tracing(true);
        for i in 0..(TRACE_RING + 50) as u64 {
            reg.record_trace(&TraceSpan {
                trace: TraceId(1),
                span: SpanId(i + 1),
                parent: SpanId::NONE,
                phase: Phase::Service,
                start_ns: i,
                dur_ns: 1,
                aux: i,
            });
        }
        let spans = reg.trace_spans();
        assert_eq!(spans.len(), TRACE_RING);
        assert_eq!(spans.first().unwrap().aux, 50);
        assert_eq!(spans.last().unwrap().aux, (TRACE_RING + 49) as u64);
    }

    #[test]
    fn snapshot_with_traces_round_trips_and_merges() {
        let reg = MetricsRegistry::new();
        reg.set_tracing(true);
        reg.inc(Ctr::SrvRequests);
        reg.record_trace(&TraceSpan {
            trace: TraceId(3),
            span: SpanId(4),
            parent: SpanId(1),
            phase: Phase::LockWait,
            start_ns: 7,
            dur_ns: 2,
            aux: 0,
        });
        let snap = reg.snapshot();
        let back = Snapshot::from_json(&Json::parse(&snap.to_json().to_pretty()).unwrap()).unwrap();
        assert_eq!(back, snap);
        // Pre-tracing producers (no "traces" field) still parse.
        let legacy = Json::parse(r#"{"counters": {}, "gauges": {}, "hists": [], "spans": []}"#).unwrap();
        assert!(Snapshot::from_json(&legacy).unwrap().traces.is_empty());
        let mut merged = snap.clone();
        merged.merge(&snap);
        assert_eq!(merged.traces.len(), 2);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let reg = MetricsRegistry::new();
        reg.inc(Ctr::SrvRequests);
        reg.add(Ctr::EngIssued, 7);
        reg.gauge_set(Gauge::EngInFlight, 3);
        reg.observe(Hist::LockWaitNs, 12345);
        reg.observe(Hist::LockWaitNs, 99);
        reg.span(SpanKind::CleanerGroup, Instant::now(), 42);
        let snap = reg.snapshot();
        let body = snap.to_json().to_pretty();
        let back = Snapshot::from_json(&Json::parse(&body).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.add(Ctr::SrvRequests, 2);
        b.add(Ctr::SrvRequests, 3);
        b.add(Ctr::SrvReplies, 1);
        a.observe(Hist::ReqRttNs, 100);
        b.observe(Hist::ReqRttNs, 100);
        b.observe(Hist::ReqRttNs, 1_000_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counter("srv_requests"), 5);
        assert_eq!(m.counter("srv_replies"), 1);
        let h = m.hist("req_rtt_ns").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1_000_200);
    }

    #[test]
    fn engine_balance_helper() {
        let reg = MetricsRegistry::new();
        reg.add(Ctr::EngIssued, 10);
        reg.add(Ctr::EngDelivered, 7);
        reg.add(Ctr::EngRetriedAbandoned, 2);
        reg.add(Ctr::EngTimeouts, 1);
        assert!(reg.snapshot().engine_balanced());
        reg.inc(Ctr::EngIssued);
        assert!(!reg.snapshot().engine_balanced());
    }

    #[test]
    fn reset_clears_everything() {
        let reg = MetricsRegistry::new();
        reg.inc(Ctr::SrvRequests);
        reg.gauge_add(Gauge::SrvQueueDepth, 4);
        reg.observe(Hist::OpWriteNs, 10);
        reg.span(SpanKind::Write, Instant::now(), 1);
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap, Snapshot::default());
    }
}
