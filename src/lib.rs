//! # CSAR — Cluster Storage with Adaptive Redundancy
//!
//! A from-scratch Rust reproduction of *"A High Performance Redundancy
//! Scheme for Cluster File Systems"* (Pillai & Lauria, IEEE CLUSTER
//! 2003): a PVFS-style striped cluster file system with three
//! redundancy schemes — RAID1 striped mirroring, RAID5 rotating parity
//! with the paper's distributed parity-lock protocol, and the paper's
//! contribution, the **Hybrid** scheme that picks mirroring or parity
//! *per write*: whole parity groups take the RAID5 path, partial-group
//! writes are mirrored into append-only overflow regions and migrate
//! back to RAID5 form when a later full-group write invalidates them.
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`parity`] | XOR kernels (byte/word/unrolled/parallel), parity accumulate/update/reconstruct |
//! | [`store`] | sparse files, payloads (real or phantom), page-cache model, §5.2 write buffer, storage accounting |
//! | [`core`] | layout math, wire protocol, client write/read drivers, I/O-server and manager engines, parity locks, overflow tables, recovery planning |
//! | [`cluster`] | live threaded deployment: blocking client API, failure injection, degraded reads, rebuild |
//! | [`sim`] | deterministic discrete-event performance model (NIC/CPU/disk/page cache) driving the same engines |
//! | [`workloads`] | the paper's benchmark workloads: microbenchmarks, ROMIO perf, NAS BTIO, FLASH I/O, Cactus BenchIO, Hartree-Fock |
//!
//! ## Quick start
//!
//! ```
//! use csar::cluster::Cluster;
//! use csar::core::proto::Scheme;
//!
//! let cluster = Cluster::spawn(4, Default::default());
//! let client = cluster.client();
//! let file = client.create("data", Scheme::Hybrid, 64 * 1024).unwrap();
//! file.write_at(0, b"redundant bytes").unwrap();
//!
//! // Survive a server failure: reads reconstruct transparently.
//! cluster.fail_server(1);
//! assert_eq!(file.read_at(0, 15).unwrap(), b"redundant bytes");
//! cluster.rebuild_server(1).unwrap();
//! cluster.shutdown();
//! ```
//!
//! See `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub mod ctl;

pub use csar_cluster as cluster;
pub use csar_core as core;
pub use csar_parity as parity;
pub use csar_sim as sim;
pub use csar_store as store;
pub use csar_workloads as workloads;
