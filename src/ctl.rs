//! The `csar-ctl` command interpreter: an interactive/scriptable shell
//! over a live in-process cluster. The binary (`src/bin/csar-ctl.rs`) is
//! a thin REPL around [`Session`]; keeping the interpreter here makes it
//! unit-testable.

use csar_cluster::{Cluster, File};
use csar_core::proto::Scheme;
use csar_core::CsarError;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Outcome of one command.
pub enum Outcome {
    /// Text to show the user.
    Text(String),
    /// Terminate the session.
    Quit,
}

/// An interactive session: one cluster plus open file handles.
pub struct Session {
    cluster: Cluster,
    files: HashMap<String, File>,
    current: Option<String>,
}

fn parse_scheme(s: &str) -> Result<Scheme, String> {
    match s.to_ascii_lowercase().as_str() {
        "raid0" | "r0" => Ok(Scheme::Raid0),
        "raid1" | "r1" => Ok(Scheme::Raid1),
        "raid5" | "r5" => Ok(Scheme::Raid5),
        "hybrid" | "hy" => Ok(Scheme::Hybrid),
        other => Err(format!("unknown scheme '{other}' (raid0|raid1|raid5|hybrid)")),
    }
}

fn parse_size(s: &str) -> Result<u64, String> {
    let (digits, mult) = match s.chars().last() {
        Some('k') | Some('K') => (&s[..s.len() - 1], 1u64 << 10),
        Some('m') | Some('M') => (&s[..s.len() - 1], 1 << 20),
        Some('g') | Some('G') => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    digits.parse::<u64>().map(|v| v * mult).map_err(|_| format!("bad number '{s}'"))
}

/// Deterministic fill pattern for `write`.
fn pattern(len: usize, seed: u64) -> Vec<u8> {
    (0..len).map(|i| ((i as u64).wrapping_mul(seed | 1) >> 3) as u8).collect()
}

pub const HELP: &str = "\
commands:
  create <name> <raid0|raid1|raid5|hybrid> <unit>   create + select a file
  open <name>                                       select an existing file
  ls                                                list files
  write <off> <len> [seed]                          write a deterministic pattern
  writestr <off> <text...>                          write literal text
  read <off> <len>                                  read and hex-dump
  report                                            storage report (current file)
  status                                            cluster/server status
  fail <srv> | restore <srv> | rebuild <srv>        failure injection & recovery
  scrub                                             verify parity/mirrors
  compact                                           compact overflow logs (current file)
  clean                                             run one cleaner pass (all files)
  save <dir>                                        persist the whole cluster as JSON
  help | quit";

impl Session {
    /// Start a session over a fresh cluster of `servers` I/O servers.
    pub fn new(servers: u32) -> Self {
        Self { cluster: Cluster::spawn(servers, Default::default()), files: HashMap::new(), current: None }
    }

    /// Start a session over a cluster reloaded from [`Cluster::save_to`]
    /// state.
    pub fn load(dir: &std::path::Path) -> Result<Self, String> {
        let cluster = Cluster::load_from(dir, Default::default()).map_err(Self::err)?;
        Ok(Self { cluster, files: HashMap::new(), current: None })
    }

    fn file(&self) -> Result<&File, String> {
        let name = self.current.as_ref().ok_or("no file selected (create/open one first)")?;
        Ok(&self.files[name])
    }

    fn err(e: CsarError) -> String {
        format!("error: {e}")
    }

    /// Execute one command line.
    pub fn run(&mut self, line: &str) -> Outcome {
        let words: Vec<&str> = line.split_whitespace().collect();
        let text = match self.dispatch(&words) {
            Ok(Some(t)) => t,
            Ok(None) => return Outcome::Quit,
            Err(e) => e,
        };
        Outcome::Text(text)
    }

    fn dispatch(&mut self, words: &[&str]) -> Result<Option<String>, String> {
        let Some(&cmd) = words.first() else { return Ok(Some(String::new())) };
        match (cmd, &words[1..]) {
            ("help", _) => Ok(Some(HELP.to_string())),
            ("quit", _) | ("exit", _) => Ok(None),

            ("create", [name, scheme, unit]) => {
                let scheme = parse_scheme(scheme)?;
                let unit = parse_size(unit)?;
                let client = self.cluster.client();
                let f = client.create(name, scheme, unit).map_err(Self::err)?;
                self.files.insert(name.to_string(), f);
                self.current = Some(name.to_string());
                Ok(Some(format!("created '{name}' ({} @ {unit} B unit)", scheme.label())))
            }
            ("open", [name]) => {
                let client = self.cluster.client();
                let f = client.open(name).map_err(Self::err)?;
                self.files.insert(name.to_string(), f);
                self.current = Some(name.to_string());
                Ok(Some(format!("selected '{name}'")))
            }
            ("ls", []) => {
                let client = self.cluster.client();
                let metas = client.list_files().map_err(Self::err)?;
                if metas.is_empty() {
                    return Ok(Some("(no files)".into()));
                }
                let mut out = String::new();
                for m in metas {
                    writeln!(
                        out,
                        "{:<20} {:>7} {:>8} B unit {:>12} B",
                        m.name,
                        m.scheme.label(),
                        m.layout.stripe_unit,
                        m.size
                    )
                    .unwrap();
                }
                Ok(Some(out.trim_end().to_string()))
            }
            ("write", [off, len]) | ("write", [off, len, _]) => {
                let off = parse_size(off)?;
                let len = parse_size(len)? as usize;
                let seed = words.get(3).map(|s| parse_size(s)).transpose()?.unwrap_or(1);
                let f = self.file()?;
                f.write_at(off, &pattern(len, seed)).map_err(Self::err)?;
                Ok(Some(format!("wrote {len} bytes at {off}")))
            }
            ("writestr", [off, ..]) if words.len() >= 3 => {
                let off = parse_size(off)?;
                let text = words[2..].join(" ");
                let f = self.file()?;
                f.write_at(off, text.as_bytes()).map_err(Self::err)?;
                Ok(Some(format!("wrote {} bytes at {off}", text.len())))
            }
            ("read", [off, len]) => {
                let off = parse_size(off)?;
                let len = parse_size(len)?;
                let f = self.file()?;
                let data = f.read_at(off, len).map_err(Self::err)?;
                Ok(Some(hexdump(off, &data)))
            }
            ("report", []) => {
                let f = self.file()?;
                let rep = f.storage_report().map_err(Self::err)?;
                let a = rep.aggregate();
                Ok(Some(format!(
                    "data {} B | mirror {} B | parity {} B | overflow {} B | overflow-mirror {} B | total {} B",
                    a.data, a.mirror, a.parity, a.overflow, a.overflow_mirror, a.total()
                )))
            }
            ("status", rest @ ([] | ["-v"])) => {
                let n = self.cluster.servers();
                let failed = self.cluster.failed_server();
                let mut out = format!("{n} I/O servers");
                match failed {
                    Some(s) => write!(out, "; server {s} DOWN").unwrap(),
                    None => write!(out, "; all up").unwrap(),
                }
                if *rest == ["-v"] {
                    writeln!(out).unwrap();
                    writeln!(
                        out,
                        "{:>4} {:>10} {:>12} {:>12} {:>14}",
                        "srv", "requests", "stored B", "lock waits", "disk reads B"
                    )
                    .unwrap();
                    for srv in 0..n {
                        let (reqs, stored, contended, dr) = self.cluster.with_server(srv, |s| {
                            (
                                s.stats.requests,
                                s.stats.bytes_stored,
                                s.lock_contention().0,
                                s.stats.disk.disk_read_bytes,
                            )
                        });
                        writeln!(out, "{srv:>4} {reqs:>10} {stored:>12} {contended:>12} {dr:>14}")
                            .unwrap();
                    }
                    out.truncate(out.trim_end().len());
                }
                Ok(Some(out))
            }
            ("fail", [srv]) => {
                let s: u32 = srv.parse().map_err(|_| format!("bad server '{srv}'"))?;
                self.check_server(s)?;
                self.cluster.fail_server(s);
                Ok(Some(format!("server {s} failed (fail-stop)")))
            }
            ("restore", [srv]) => {
                let s: u32 = srv.parse().map_err(|_| format!("bad server '{srv}'"))?;
                self.check_server(s)?;
                self.cluster.restore_server(s);
                Ok(Some(format!("server {s} restored (contents intact)")))
            }
            ("rebuild", [srv]) => {
                let s: u32 = srv.parse().map_err(|_| format!("bad server '{srv}'"))?;
                self.check_server(s)?;
                self.cluster.rebuild_server(s).map_err(Self::err)?;
                Ok(Some(format!("server {s} rebuilt from redundancy")))
            }
            ("scrub", []) => {
                let rep = self.cluster.scrub().map_err(Self::err)?;
                Ok(Some(format!(
                    "{} file(s), {} parity group(s) + {} mirror block(s) checked: {}",
                    rep.files,
                    rep.groups_checked,
                    rep.mirrors_checked,
                    if rep.is_clean() {
                        "clean".to_string()
                    } else {
                        format!("{} bad group(s), {} bad mirror(s): {:?} {:?}",
                            rep.bad_groups.len(), rep.bad_mirrors.len(), rep.bad_groups, rep.bad_mirrors)
                    }
                )))
            }
            ("compact", []) => {
                let f = self.file()?;
                f.compact_overflow().map_err(Self::err)?;
                Ok(Some("overflow logs compacted".into()))
            }
            ("clean", []) => {
                let reclaimed = self.cluster.clean_pass().map_err(Self::err)?;
                Ok(Some(format!("cleaner pass reclaimed {reclaimed} bytes")))
            }
            ("save", [dir]) => {
                self.cluster.save_to(std::path::Path::new(dir)).map_err(Self::err)?;
                Ok(Some(format!("cluster state saved to {dir}")))
            }
            _ => Err(format!("bad command '{}' (try 'help')", words.join(" "))),
        }
    }

    fn check_server(&self, s: u32) -> Result<(), String> {
        if s >= self.cluster.servers() {
            return Err(format!("server {s} out of range (0..{})", self.cluster.servers()));
        }
        Ok(())
    }

    /// Tear the cluster down.
    pub fn shutdown(self) {
        self.cluster.shutdown();
    }
}

fn hexdump(base: u64, data: &[u8]) -> String {
    let mut out = String::new();
    for (i, chunk) in data.chunks(16).enumerate() {
        write!(out, "{:08x}  ", base as usize + i * 16).unwrap();
        for b in chunk {
            write!(out, "{b:02x} ").unwrap();
        }
        for _ in chunk.len()..16 {
            out.push_str("   ");
        }
        out.push(' ');
        for b in chunk {
            out.push(if b.is_ascii_graphic() || *b == b' ' { *b as char } else { '.' });
        }
        out.push('\n');
        if i >= 31 {
            writeln!(out, "... ({} more bytes)", data.len() - (i + 1) * 16).unwrap();
            break;
        }
    }
    out.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text(o: Outcome) -> String {
        match o {
            Outcome::Text(t) => t,
            Outcome::Quit => panic!("unexpected quit"),
        }
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut s = Session::new(4);
        assert!(text(s.run("create demo hybrid 4k")).contains("Hybrid"));
        text(s.run("writestr 0 hello csar"));
        let dump = text(s.run("read 0 10"));
        assert!(dump.contains("hello csar"), "{dump}");
        s.shutdown();
    }

    #[test]
    fn fail_read_rebuild_via_commands() {
        let mut s = Session::new(4);
        s.run("create f raid5 1k");
        s.run("write 0 50000 7");
        assert!(text(s.run("status")).contains("all up"));
        text(s.run("fail 1"));
        assert!(text(s.run("status")).contains("server 1 DOWN"));
        // Degraded read still hex-dumps data.
        let dump = text(s.run("read 0 32"));
        assert!(dump.starts_with("00000000"));
        assert!(text(s.run("rebuild 1")).contains("rebuilt"));
        assert!(text(s.run("scrub")).contains("clean"));
        s.shutdown();
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = Session::new(2);
        assert!(text(s.run("read 0 1")).contains("no file selected"));
        assert!(text(s.run("create f raid9 1k")).contains("unknown scheme"));
        assert!(text(s.run("frobnicate")).contains("bad command"));
        assert!(text(s.run("fail 9")).contains("out of range"));
        assert!(text(s.run("open missing")).contains("error"));
        s.shutdown();
    }

    #[test]
    fn ls_report_compact_clean() {
        let mut s = Session::new(4);
        s.run("create a hybrid 1k");
        s.run("create b raid1 2k");
        let ls = text(s.run("ls"));
        assert!(ls.contains('a') && ls.contains("Hybrid") && ls.contains("RAID1"));
        s.run("open a");
        s.run("write 0 8k");
        s.run("write 100 50"); // overflowed partial
        let rep = text(s.run("report"));
        assert!(rep.contains("total"));
        assert!(text(s.run("compact")).contains("compacted"));
        let cleaned = text(s.run("clean"));
        assert!(cleaned.contains("reclaimed"));
        s.shutdown();
    }

    #[test]
    fn save_and_load_between_sessions() {
        let dir = std::env::temp_dir().join(format!("csar-ctl-save-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = Session::new(3);
        s.run("create keep hybrid 2k");
        s.run("writestr 0 durable bytes");
        assert!(text(s.run(&format!("save {}", dir.display()))).contains("saved"));
        s.shutdown();
        let mut s2 = Session::load(&dir).unwrap();
        s2.run("open keep");
        let dump = text(s2.run("read 0 13"));
        assert!(dump.contains("durable bytes"), "{dump}");
        s2.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quit_terminates() {
        let mut s = Session::new(2);
        assert!(matches!(s.run("quit"), Outcome::Quit));
    }

    #[test]
    fn size_suffixes_and_hexdump_truncation() {
        assert_eq!(parse_size("4k").unwrap(), 4096);
        assert_eq!(parse_size("2M").unwrap(), 2 << 20);
        let dump = hexdump(0, &vec![0u8; 1024]);
        assert!(dump.contains("more bytes"));
    }
}
