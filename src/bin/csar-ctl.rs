//! `csar-ctl` — an interactive shell over a live in-process CSAR cluster.
//!
//! ```text
//! csar-ctl [--servers N | --load DIR] [-c "cmd; cmd; ..."]
//! ```
//!
//! Without `-c`, reads commands from stdin (type `help`). With `-c`,
//! runs the `;`-separated commands and exits — handy for scripting:
//!
//! ```text
//! csar-ctl -c "create demo hybrid 64k; writestr 0 hello; fail 1; read 0 5; rebuild 1; scrub"
//! ```

use csar::ctl::{Outcome, Session};
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut servers = 4u32;
    let mut script: Option<String> = None;
    let mut load: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--servers" => {
                servers = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("bad value for --servers"));
            }
            "--load" => load = Some(it.next().cloned().unwrap_or_else(|| usage("missing dir for --load"))),
            "-c" => script = Some(it.next().cloned().unwrap_or_else(|| usage("missing script for -c"))),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let mut session = match &load {
        Some(dir) => Session::load(std::path::Path::new(dir)).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        }),
        None => Session::new(servers),
    };
    if let Some(script) = script {
        for cmd in script.split(';') {
            let cmd = cmd.trim();
            if cmd.is_empty() {
                continue;
            }
            println!("csar> {cmd}");
            match session.run(cmd) {
                Outcome::Text(t) if !t.is_empty() => println!("{t}"),
                Outcome::Text(_) => {}
                Outcome::Quit => break,
            }
        }
        session.shutdown();
        return;
    }

    println!("csar-ctl: live cluster with {servers} I/O servers (type 'help')");
    let stdin = std::io::stdin();
    loop {
        print!("csar> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        match session.run(line.trim()) {
            Outcome::Text(t) if !t.is_empty() => println!("{t}"),
            Outcome::Text(_) => {}
            Outcome::Quit => break,
        }
    }
    session.shutdown();
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: csar-ctl [--servers N | --load DIR] [-c \"cmd; cmd\"]");
    std::process::exit(2);
}
