#!/usr/bin/env bash
# Tier-1 gate: build, tests, then the first-party static analysis and
# the parity-lock model checker (ROADMAP.md "Tier-1 verify" plus the
# csar-analysis passes). Any failing step fails the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
# The analysis passes cover the PR 2 modules too: lint's
# no-unwrap-request-path now includes crates/cluster/src/client.rs, and
# check's suite exercises the pipelined parity-lock scenarios.
cargo run -q -p csar-analysis -- lint
cargo run -q -p csar-analysis -- check
# Perf trajectory: regenerate the barrier-vs-pipelined ablation so
# BENCH_pipeline.json tracks the completion-driven engine from PR 2 on.
cargo run -q --release -p csar-bench --bin figures -- --bench-json BENCH_pipeline.json
