#!/usr/bin/env bash
# Tier-1 gate: build, tests, then the first-party static analysis and
# the parity-lock model checker (ROADMAP.md "Tier-1 verify" plus the
# csar-analysis passes). Any failing step fails the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
# The analysis passes cover the PR 2 modules too: lint's
# no-unwrap-request-path now includes crates/cluster/src/client.rs, and
# check's suite exercises the pipelined parity-lock scenarios.
cargo run -q -p csar-analysis -- lint
cargo run -q -p csar-analysis -- check
# Perf trajectory: regenerate the barrier-vs-pipelined ablation so
# BENCH_pipeline.json tracks the completion-driven engine from PR 2 on.
cargo run -q --release -p csar-bench --bin figures -- --bench-json BENCH_pipeline.json
# Datapath smoke (PR 3): a scaled-down run of the zero-allocation
# ablation. The allocation audit is exact and hermetic, so the gate is
# hard: steady-state whole-group parity computation must stay at zero
# heap allocations. The wall-clock speedup column is host-dependent and
# therefore reported, not gated.
# The smoke run writes to a scratch path so it never clobbers the
# committed full-scale BENCH_datapath.json (regenerate that with
# `figures --bench-json BENCH_datapath.json`).
smoke=$(mktemp /tmp/BENCH_datapath_smoke.XXXXXX.json)
trap 'rm -f "$smoke"' EXIT
cargo run -q --release -p csar-bench --bin figures -- --bench-json "$smoke" --scale 0.25
grep -q '"steady_allocs": 0' "$smoke" || {
    echo "tier1: FAIL — steady-state datapath allocations regressed above zero" >&2
    grep '"steady_allocs"' "$smoke" >&2
    exit 1
}
echo "tier1: datapath steady-state allocations: 0 (gate ok)"
# Observability smoke (csar-obs): a scaled-down run of the metrics-on
# vs metrics-off ablation. Both allocation audits (the registry hot
# path and the parity fold with metrics enabled) are exact, so the gate
# is hard: both must stay at zero steady-state allocations. The
# wall-clock overhead column is host-dependent and therefore reported,
# not gated (regenerate the committed full-scale BENCH_obs.json with
# `figures --bench-json BENCH_obs.json`).
obs_smoke=$(mktemp /tmp/BENCH_obs_smoke.XXXXXX.json)
trap 'rm -f "$smoke" "$obs_smoke"' EXIT
cargo run -q --release -p csar-bench --bin figures -- --bench-json "$obs_smoke" --scale 0.25
zeroed=$(grep -c '"steady_allocs": 0' "$obs_smoke" || true)
if [ "$zeroed" -ne 2 ]; then
    echo "tier1: FAIL — a steady-state allocation audit regressed above zero" >&2
    grep '"steady_allocs"' "$obs_smoke" >&2
    exit 1
fi
grep '"overhead_pct"' "$obs_smoke" | sed 's/^ */tier1: obs /'
echo "tier1: obs steady-state allocations: 0 (gate ok)"
# Causal-tracing smoke (DESIGN.md §15): a scaled-down run of the
# tracing-on vs tracing-off ablation. The two allocation audits
# (record_trace with tracing disabled and enabled) are exact, so the
# gate is hard: both must stay at zero steady-state allocations. The
# Chrome trace_event export must also round-trip through its own parser
# bit-for-bit (`roundtrip_ok`). The wall-clock overhead column is
# host-dependent and therefore reported, not gated (regenerate the
# committed full-scale BENCH_trace.json with
# `figures --bench-json BENCH_trace.json`).
trace_smoke=$(mktemp /tmp/BENCH_trace_smoke.XXXXXX.json)
trap 'rm -f "$smoke" "$obs_smoke" "$trace_smoke"' EXIT
cargo run -q --release -p csar-bench --bin figures -- --bench-json "$trace_smoke" --scale 0.25
zeroed=$(grep -c '"steady_allocs": 0' "$trace_smoke" || true)
if [ "$zeroed" -ne 2 ]; then
    echo "tier1: FAIL — a trace-path steady-state allocation audit regressed above zero" >&2
    grep '"steady_allocs"' "$trace_smoke" >&2
    exit 1
fi
grep -q '"roundtrip_ok": true' "$trace_smoke" || {
    echo "tier1: FAIL — Chrome trace export no longer round-trips" >&2
    exit 1
}
grep '"overhead_pct"' "$trace_smoke" | sed 's/^ */tier1: trace /'
echo "tier1: trace steady-state allocations: 0, Chrome export round-trips (gate ok)"
# Trace exporter end-to-end smoke: the trace binary collects spans from
# a deterministic sim run, validates nesting, writes Chrome trace_event
# JSON and re-parses it; it exits nonzero on any nesting or round-trip
# failure.
chrome_smoke=$(mktemp /tmp/chrome_trace_smoke.XXXXXX.json)
trap 'rm -f "$smoke" "$obs_smoke" "$trace_smoke" "$chrome_smoke"' EXIT
cargo run -q --release -p csar-bench --bin trace -- "$chrome_smoke" --scale 0.1 > /dev/null
grep -q '"traceEvents"' "$chrome_smoke" || {
    echo "tier1: FAIL — trace exporter wrote no traceEvents" >&2
    exit 1
}
echo "tier1: trace exporter: spans nest, Chrome JSON round-trips (gate ok)"
# Live-cluster metrics smoke: the stats binary runs a mixed workload on
# a threaded cluster, scrapes every node through GetStats, and exits
# nonzero unless the merged snapshot parses back bit-for-bit and the
# engine balance invariant (issued == delivered + retried + timeouts +
# abandoned) holds. --json-out exercises the snapshot file path that
# scripts consume.
stats_out=$(mktemp /tmp/stats_snapshot.XXXXXX.json)
trap 'rm -f "$smoke" "$obs_smoke" "$trace_smoke" "$chrome_smoke" "$stats_out"' EXIT
cargo run -q --release -p csar-bench --bin stats -- --json-out "$stats_out" > /dev/null
grep -q '"counters"' "$stats_out" || {
    echo "tier1: FAIL — stats --json-out wrote no counters" >&2
    exit 1
}
echo "tier1: live metrics scrape: snapshot round-trips, engine balanced (gate ok)"
# §6.7 cleaner regressions (group-precision, tail reclaim, lost-update
# race): already part of `cargo test -q` above, re-run here by name so
# a gate failure points straight at the cleaner.
cargo test -q -p csar-cluster --test maintenance > /dev/null
echo "tier1: cleaner regression tests: ok"
