#!/usr/bin/env bash
# Tier-1 gate: build, tests, then the first-party static analysis and
# the parity-lock model checker (ROADMAP.md "Tier-1 verify" plus the
# csar-analysis passes). Any failing step fails the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo run -q -p csar-analysis -- lint
cargo run -q -p csar-analysis -- check
