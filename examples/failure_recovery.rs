//! Failure injection, degraded reads, and rebuild — the fault-tolerance
//! story the paper's redundancy exists for.
//!
//! Writes a file under each redundancy scheme, fail-stops an I/O server,
//! shows that reads still return correct data (reconstructed from the
//! mirror, the parity group, or the overflow mirror), rebuilds a
//! replacement server from redundancy, and verifies again.
//!
//! ```text
//! cargo run --example failure_recovery
//! ```

use csar::cluster::Cluster;
use csar::core::proto::Scheme;
use csar::store::SplitMix64;

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn main() {
    for scheme in [Scheme::Raid1, Scheme::Raid5, Scheme::Hybrid] {
        println!("=== {} ===", scheme.label());
        let cluster = Cluster::spawn(4, Default::default());
        let client = cluster.client();
        let file = client.create("precious", scheme, 16 * 1024).unwrap();

        // A body plus an unaligned patch — under Hybrid the patch lives
        // in the overflow region, so rebuild must restore that too.
        let body = pattern(1 << 20, 1);
        file.write_at(0, &body).unwrap();
        let patch = pattern(5000, 2);
        file.write_at(777, &patch).unwrap();
        let mut want = body.clone();
        want[777..777 + patch.len()].copy_from_slice(&patch);

        // Fail-stop server 2. Reads now reconstruct around it.
        cluster.fail_server(2);
        let got = file.read_at(0, want.len() as u64).unwrap();
        assert_eq!(got, want);
        println!("  server 2 down: degraded read of {} bytes OK", got.len());

        // Writes keep flowing too (degraded mode): the surviving copies
        // and parity absorb them.
        let update = pattern(20_000, 9);
        file.write_at(50_000, &update).unwrap();
        want[50_000..70_000].copy_from_slice(&update);
        assert_eq!(file.read_at(50_000, 20_000).unwrap(), update);
        println!("  server 2 down: degraded write of {} bytes OK", update.len());

        // Offline rebuild: a blank replacement is filled from the
        // mirrors / parity groups / overflow mirrors of the survivors.
        cluster.rebuild_server(2).unwrap();
        let got = file.read_at(0, want.len() as u64).unwrap();
        assert_eq!(got, want);
        println!("  rebuilt server 2: normal read OK");

        // Tolerates a *different* single failure afterwards.
        cluster.fail_server(0);
        let got = file.read_at(0, want.len() as u64).unwrap();
        assert_eq!(got, want);
        println!("  server 0 down after rebuild: degraded read OK");
        cluster.shutdown();
    }

    // RAID0 (stock PVFS) by contrast loses data — the limitation that
    // motivates the whole paper.
    println!("=== RAID0 (stock PVFS) ===");
    let cluster = Cluster::spawn(4, Default::default());
    let client = cluster.client();
    let file = client.create("scratch", Scheme::Raid0, 16 * 1024).unwrap();
    file.write_at(0, &pattern(1 << 20, 3)).unwrap();
    cluster.fail_server(2);
    match file.read_at(0, 1 << 20) {
        Err(e) => println!("  server 2 down: {e}"),
        Ok(_) => unreachable!("RAID0 cannot survive a failure"),
    }
    cluster.shutdown();
}
