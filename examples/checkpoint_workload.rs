//! BTIO-style parallel checkpointing on the live cluster: several writer
//! threads dump collective solution snapshots into one shared file,
//! under each redundancy scheme, and the parity stays consistent.
//!
//! This drives the *functional* system (real bytes, real threads); the
//! paper's bandwidth figures come from the simulator (`figures` binary),
//! which runs the same engines under a performance model.
//!
//! ```text
//! cargo run --release --example checkpoint_workload
//! ```

use csar::cluster::Cluster;
use csar::core::proto::Scheme;
use csar::core::recovery::parity_consistent;
use csar::store::StreamKind;
use csar::store::SplitMix64;
use std::time::Instant;

const PROCS: usize = 4;
const DUMPS: u64 = 8;
const DUMP_BYTES: u64 = 4 << 20; // per collective dump
const UNIT: u64 = 16 * 1024;

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn main() {
    for scheme in [Scheme::Raid0, Scheme::Raid1, Scheme::Raid5, Scheme::Hybrid] {
        let cluster = Cluster::spawn(6, Default::default());
        let client = cluster.client();
        let _file = client.create("checkpoint", scheme, UNIT).unwrap();

        let started = Instant::now();
        // One barrier-delimited round per dump: each "rank" writes its
        // contiguous slice (unaligned chunks, like ROMIO presents them).
        for d in 0..DUMPS {
            std::thread::scope(|scope| {
                for p in 0..PROCS {
                    let f = cluster.client().open("checkpoint").unwrap();
                    scope.spawn(move || {
                        let chunk = DUMP_BYTES / PROCS as u64;
                        let off = d * DUMP_BYTES + p as u64 * chunk;
                        let data = pattern(chunk as usize, d * 100 + p as u64);
                        f.write_at(off, &data).unwrap();
                    });
                }
            });
        }
        let elapsed = started.elapsed();

        // Verify contents.
        let f = client.open("checkpoint").unwrap();
        for d in 0..DUMPS {
            for p in 0..PROCS {
                let chunk = DUMP_BYTES / PROCS as u64;
                let off = d * DUMP_BYTES + p as u64 * chunk;
                let want = pattern(chunk as usize, d * 100 + p as u64);
                assert_eq!(f.read_at(off, chunk).unwrap(), want);
            }
        }

        // Verify every parity group against the in-place data.
        let meta = f.meta();
        if meta.scheme.uses_parity() {
            let ly = meta.layout;
            let unit = ly.stripe_unit;
            let groups = meta.size.div_ceil(ly.group_width_bytes());
            for g in 0..groups {
                let mut blocks: Vec<Vec<u8>> = Vec::new();
                for b in ly.group_blocks(g) {
                    let bytes = cluster.with_server(ly.home_server(b), |s| {
                        s.store().read(meta.fh, StreamKind::Data, ly.data_local_off(b, 0), unit)
                    });
                    blocks.push(bytes.as_bytes().unwrap().to_vec());
                }
                let parity = cluster.with_server(ly.parity_server(g), |s| {
                    s.store().read(meta.fh, StreamKind::Parity, ly.parity_local_off(g, 0), unit)
                });
                let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
                assert!(parity_consistent(&refs, &parity.as_bytes().unwrap()));
            }
        }

        let report = f.storage_report().unwrap();
        let mb = (DUMPS * DUMP_BYTES) as f64 / (1024.0 * 1024.0);
        println!(
            "{:>8}: {mb:>5.0} MB checkpointed in {elapsed:>8.1?}, storage expansion {:.2}x, parity verified",
            scheme.label(),
            report.expansion()
        );
        cluster.shutdown();
    }
}
