//! A seconds-scale preview of the paper's headline figure: full-stripe
//! write bandwidth vs number of I/O servers (Fig. 4a), on the simulated
//! testbed. Run the `figures` binary in `csar-bench` for the complete,
//! full-scale set.
//!
//! ```text
//! cargo run --release --example figure_preview
//! ```

use csar::core::proto::Scheme;
use csar::sim::{HwProfile, Op, SimCluster};

fn main() {
    let profile = HwProfile::myrinet_pentium3();
    let unit = 64 * 1024u64;
    println!("Fig. 4(a) preview: single-client group-aligned writes, MB/s\n");
    println!("{:>8} {:>8} {:>8} {:>8} {:>8}", "servers", "RAID0", "RAID1", "RAID5", "Hybrid");
    for n in 1..=7u32 {
        print!("{n:>8}");
        for scheme in Scheme::MAIN {
            if scheme.uses_parity() && n < 2 {
                print!(" {:>8}", "-");
                continue;
            }
            let mut sim = SimCluster::new(profile, n, 1);
            let f = sim.create_file("bench", scheme, unit);
            let group = if scheme.uses_parity() { (n as u64 - 1) * unit } else { n as u64 * unit };
            let chunk = ((4 << 20) / group).max(1) * group;
            let ops: Vec<Op> = (0..16u64)
                .map(|i| Op::Write { file: f, off: i * chunk, len: chunk })
                .collect();
            let stats = sim.run_phase(vec![(0, ops)]);
            print!(" {:>8.1}", stats.write_mbps());
        }
        println!();
    }
    println!(
        "\nShapes to notice (paper Fig. 4a): RAID1 ≈ half of RAID0 and flattens \
         first; RAID5 ≈ Hybrid ≈ 3/4 of RAID0 at 7 servers (paper: 73%)."
    );
}
