//! Quick start: spin up a live CSAR cluster, write a file under Hybrid
//! redundancy, read it back, and look at where the bytes went.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use csar::cluster::Cluster;
use csar::core::proto::Scheme;

fn main() {
    // Four I/O servers plus a metadata manager, each on its own thread.
    let cluster = Cluster::spawn(4, Default::default());
    let client = cluster.client();

    // A file striped over all servers, 64 KB stripe unit, Hybrid
    // redundancy (the paper's contribution).
    let file = client.create("quickstart", Scheme::Hybrid, 64 * 1024).unwrap();

    // A large, group-aligned write: goes the RAID5 way (data + parity).
    let big = vec![0xAAu8; 3 * 64 * 1024 * 4]; // 4 whole parity groups
    file.write_at(0, &big).unwrap();

    // A small unaligned update: goes the RAID1 way, into the overflow
    // region of the block's home server plus a mirror on the next one.
    let patch = vec![0x55u8; 10_000];
    file.write_at(12_345, &patch).unwrap();

    // Reads return the latest bytes wherever they live.
    let back = file.read_at(12_345, 10_000).unwrap();
    assert_eq!(back, patch);
    println!("wrote {} + {} bytes, read back OK", big.len(), patch.len());

    // Where did the bytes go?
    let report = file.storage_report().unwrap();
    let agg = report.aggregate();
    println!("\nstorage by stream:");
    println!("  data            {:>6} KB", agg.data >> 10);
    println!("  parity          {:>6} KB", agg.parity >> 10);
    println!("  overflow        {:>6} KB", agg.overflow >> 10);
    println!("  overflow mirror {:>6} KB", agg.overflow_mirror >> 10);
    println!("  expansion       {:.2}x over plain striping", report.expansion());

    // A later full-group write over the patched range migrates the data
    // back to pure RAID5 form (the overflow entries are invalidated).
    file.write_at(0, &big).unwrap();
    let live: u64 = (0..cluster.servers())
        .map(|s| cluster.with_server(s, |srv| srv.overflow_live_bytes(file.meta().fh)))
        .sum();
    println!("\nafter rewriting the full groups: {live} live overflow bytes (migrated back to RAID5)");

    cluster.shutdown();
}
