//! Regenerate a slice of the paper's Table 2 (storage requirement per
//! redundancy scheme) against the *live* cluster, demonstrating that the
//! accounting the simulator reports is the accounting the functional
//! system produces.
//!
//! ```text
//! cargo run --release --example storage_report
//! ```

use csar::cluster::Cluster;
use csar::core::proto::Scheme;
use csar::store::{fmt_mb, Payload};
use csar::workloads::{flash, hartree_fock};
use csar::sim::Op;

/// Replay a workload's write ops onto live files with phantom payloads
/// (sizes only — exactly how the paper's Table 2 measures file sizes).
/// Returns the total stored bytes across all of the workload's files.
fn replay(cluster: &Cluster, scheme: Scheme, unit: u64, w: &csar::workloads::Workload) -> u64 {
    let client = cluster.client();
    let files: Vec<csar::cluster::File> = (0..w.files())
        .map(|i| client.create(&format!("t2-{i}"), scheme, unit).unwrap())
        .collect();
    for phase in &w.phases {
        for (_, ops) in phase {
            for op in ops {
                if let Op::Write { file, off, len } = op {
                    files[*file].write_payload(*off, Payload::Phantom(*len)).unwrap();
                }
            }
        }
    }
    files.iter().map(|f| f.storage_report().unwrap().total_bytes()).sum()
}

fn main() {
    println!(
        "{:>28} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "RAID0", "RAID1", "RAID5", "Hybrid"
    );
    let cases: Vec<(&str, u64, csar::workloads::Workload)> = vec![
        ("FLASH I/O (4 proc, 16K)", 16 * 1024, flash::workload(0, 4, 1)),
        ("FLASH I/O (4 proc, 64K)", 64 * 1024, flash::workload(0, 4, 1)),
        ("Hartree-Fock", 64 * 1024, hartree_fock::workload(0)),
    ];
    for (name, unit, w) in cases {
        print!("{name:>28}");
        for scheme in Scheme::MAIN {
            let cluster = Cluster::spawn(6, Default::default());
            let total = replay(&cluster, scheme, unit, &w);
            print!(" {:>10}", fmt_mb(total));
            cluster.shutdown();
        }
        println!();
    }
    println!(
        "\n(compare the paper's Table 2: FLASH 4-proc = 45/90/54/74 MB at 16K \
         and 45/90/54/107 MB at 64K; Hartree-Fock = 149/298/179/299 MB)"
    );
}
