//! End-to-end smoke test of the `csar-ctl` binary in scripted (-c) mode.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_csar-ctl")).args(args).output().expect("spawn");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn scripted_session_covers_the_lifecycle() {
    let (ok, stdout, _) = run(&[
        "--servers",
        "4",
        "-c",
        "create demo hybrid 16k; writestr 0 the quick brown fox; fail 2; read 4 5; \
         rebuild 2; scrub; report; status -v; ls",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("created 'demo'"));
    assert!(stdout.contains("quick"), "degraded hexdump shows the data:\n{stdout}");
    assert!(stdout.contains("rebuilt from redundancy"));
    assert!(stdout.contains("clean"));
    assert!(stdout.contains("Hybrid"));
    assert!(stdout.contains("lock waits"), "verbose status table present");
}

#[test]
fn bad_commands_do_not_kill_the_session() {
    let (ok, stdout, _) = run(&["-c", "frobnicate; create x raid1 1k; writestr 0 ok; read 0 2"]);
    assert!(ok);
    assert!(stdout.contains("bad command"));
    assert!(stdout.contains("created 'x'"));
}

#[test]
fn bad_flags_exit_nonzero() {
    let (ok, _, stderr) = run(&["--servers"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}
