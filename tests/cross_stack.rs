//! Cross-crate integration: the live threaded cluster and the simulator
//! must agree wherever their domains overlap (storage accounting,
//! overflow behaviour), and the workload generators must drive both.

use csar::cluster::Cluster;
use csar::core::proto::Scheme;
use csar::sim::{HwProfile, Op, SimCluster};
use csar::store::Payload;
use csar::workloads::{flash, hartree_fock, microbench, Workload};

/// Replay a workload's writes on the live cluster with phantom payloads.
fn replay_live(cluster: &Cluster, name: &str, scheme: Scheme, unit: u64, w: &Workload) -> csar::store::StreamUsage {
    let client = cluster.client();
    let files: Vec<csar::cluster::File> = (0..w.files())
        .map(|i| client.create(&format!("{name}-{i}"), scheme, unit).unwrap())
        .collect();
    for phase in &w.phases {
        for (_, ops) in phase {
            for op in ops {
                if let Op::Write { file, off, len } = op {
                    files[*file].write_payload(*off, Payload::Phantom(*len)).unwrap();
                }
            }
        }
    }
    let mut total = csar::store::StreamUsage::default();
    for f in &files {
        total.merge(&f.storage_report().unwrap().aggregate());
    }
    total
}

/// Replay the same workload in the simulator.
fn replay_sim(scheme: Scheme, servers: u32, unit: u64, w: &Workload) -> csar::store::StreamUsage {
    let mut sim = SimCluster::new(HwProfile::test_profile(), servers, w.clients().max(1));
    for f in 0..w.files() {
        let idx = sim.create_file(&format!("x{f}"), scheme, unit);
        assert_eq!(idx, f);
    }
    for phase in &w.phases {
        sim.run_phase(phase.clone());
    }
    let mut total = csar::store::StreamUsage::default();
    for f in 0..w.files() {
        total.merge(&sim.storage_report(f).aggregate());
    }
    total
}

#[test]
fn live_and_simulated_storage_reports_agree() {
    // The same engines run under both drivers, so byte-exact agreement
    // is required — this is what lets Table 2 come from the simulator.
    let n = 6u32;
    for scheme in Scheme::MAIN {
        for (name, unit, w) in [
            ("flash", 16 * 1024u64, flash::workload(0, 4, 3)),
            ("hf", 64 * 1024, hartree_fock::workload(0)),
        ] {
            let cluster = Cluster::spawn(n, Default::default());
            let live = replay_live(&cluster, &format!("{name}-{:?}", scheme), scheme, unit, &w);
            cluster.shutdown();
            let simulated = replay_sim(scheme, n, unit, &w);
            assert_eq!(live, simulated, "{name} under {scheme:?}");
        }
    }
}

#[test]
fn microbenchmark_generators_drive_the_live_cluster() {
    let cluster = Cluster::spawn(4, Default::default());
    let client = cluster.client();
    let unit = 8 * 1024u64;
    let (create, writes) = microbench::small_writes(0, unit, 16);
    let file = client.create("micro", Scheme::Hybrid, unit).unwrap();
    for w in [&create, &writes] {
        for phase in &w.phases {
            for (_, ops) in phase {
                for op in ops {
                    if let Op::Write { off, len, .. } = op {
                        // Real bytes this time: position-dependent pattern.
                        let data: Vec<u8> =
                            (*off..*off + *len).map(|i| (i % 251) as u8).collect();
                        file.write_at(*off, &data).unwrap();
                    }
                }
            }
        }
    }
    // Every byte reads back as the last pattern written.
    let total = create.bytes_written();
    let got = file.read_at(0, total).unwrap();
    for (i, b) in got.iter().enumerate() {
        assert_eq!(*b, (i % 251) as u8, "byte {i}");
    }
    cluster.shutdown();
}

#[test]
fn degraded_reads_survive_each_failed_server_after_mixed_workload() {
    for scheme in [Scheme::Raid1, Scheme::Raid5, Scheme::Hybrid] {
        let cluster = Cluster::spawn(5, Default::default());
        let client = cluster.client();
        let unit = 4 * 1024u64;
        let file = client.create("mixed", scheme, unit).unwrap();
        // Mixed large + small writes (hybrid exercises both paths).
        let mut reference = vec![0u8; 200_000];
        let stamp = |file: &csar::cluster::File,
                         reference: &mut Vec<u8>,
                         off: usize,
                         len: usize,
                         seed: u8| {
            let data: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(seed).wrapping_add(seed)).collect();
            file.write_at(off as u64, &data).unwrap();
            reference[off..off + len].copy_from_slice(&data);
        };
        stamp(&file, &mut reference, 0, 200_000, 3);
        stamp(&file, &mut reference, 777, 5000, 7);
        stamp(&file, &mut reference, 150_001, 9999, 11);
        stamp(&file, &mut reference, 60_000, 40_000, 13);

        for kill in 0..5u32 {
            cluster.fail_server(kill);
            let got = file.read_at(0, reference.len() as u64).unwrap();
            assert_eq!(got, reference, "{scheme:?}, server {kill} down");
            cluster.restore_server(kill);
        }
        cluster.shutdown();
    }
}

#[test]
fn rebuild_preserves_every_stream_for_hybrid() {
    let cluster = Cluster::spawn(4, Default::default());
    let client = cluster.client();
    let unit = 4 * 1024u64;
    let file = client.create("full", Scheme::Hybrid, unit).unwrap();
    let body: Vec<u8> = (0..100_000u64).map(|i| (i % 241) as u8).collect();
    file.write_at(0, &body).unwrap();
    file.write_at(123, &[0xEE; 777]).unwrap(); // overflowed partial
    let mut want = body.clone();
    want[123..900].copy_from_slice(&[0xEE; 777]);

    cluster.fail_server(1);
    cluster.rebuild_server(1).unwrap();

    // Contents correct...
    assert_eq!(file.read_at(0, want.len() as u64).unwrap(), want);
    // ...and redundancy is fully restored: any OTHER single failure is
    // still survivable, including ones that need the rebuilt server's
    // mirrors/parity/overflow-mirror copies.
    for kill in [0u32, 2, 3] {
        cluster.fail_server(kill);
        assert_eq!(
            file.read_at(0, want.len() as u64).unwrap(),
            want,
            "failure of {kill} after rebuilding 1"
        );
        cluster.restore_server(kill);
    }
    cluster.shutdown();
}

#[test]
fn compaction_then_degraded_read_still_correct() {
    // The §6.7 cleaner must not break recoverability: after compaction
    // the overflow mirror still covers the live extents.
    let cluster = Cluster::spawn(4, Default::default());
    let client = cluster.client();
    let file = client.create("cleaned", Scheme::Hybrid, 4096).unwrap();
    let body = vec![5u8; 50_000];
    file.write_at(0, &body).unwrap();
    // Fragment the overflow log with repeated small writes.
    for i in 0..20u64 {
        file.write_at(100 + i * 7, &[i as u8; 64]).unwrap();
    }
    let mut want = body.clone();
    for i in 0..20u64 {
        let off = (100 + i * 7) as usize;
        want[off..off + 64].copy_from_slice(&[i as u8; 64]);
    }
    file.compact_overflow().unwrap();
    assert_eq!(file.read_at(0, want.len() as u64).unwrap(), want);
    cluster.fail_server(0);
    assert_eq!(file.read_at(0, want.len() as u64).unwrap(), want, "degraded after compaction");
    cluster.shutdown();
}
