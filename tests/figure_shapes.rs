//! Shape tests: every figure and table of the paper, asserted
//! mechanically at reduced scale.
//!
//! The simulator is not expected to match the paper's absolute MB/s (its
//! substrate is a calibrated model, not the authors' testbed), but the
//! *shapes* — which scheme wins, by roughly what factor, where the
//! crossovers fall — are the reproduction target. Each test names the
//! paper claim it pins. `EXPERIMENTS.md` records the full-scale numbers.

use csar_bench::figures::{self, series, FigOpts};

fn opts(scale: f64) -> FigOpts {
    FigOpts { scale }
}

// ---------------------------------------------------------------------------
// Fig. 3 — "locking adds about 20% overhead"
// ---------------------------------------------------------------------------

#[test]
fn fig3_locking_overhead_is_measurable_but_bounded() {
    let rows = figures::fig3(&opts(0.15));
    let get = |label: &str| {
        rows.iter().find(|(l, _)| l == label).map(|(_, v)| *v).expect("missing row")
    };
    let raid0 = get("RAID0");
    let nolock = get("R5-NOLOCK");
    let locked = get("RAID5");
    // RAID0 (no RMW at all) is far above both RAID5 variants.
    assert!(raid0 > 2.0 * nolock, "raid0 {raid0} vs nolock {nolock}");
    // Locking costs something…
    assert!(locked < nolock, "locking must cost: {locked} vs {nolock}");
    // …but not everything (paper: ~20%; we land within 5–60%).
    let overhead = 1.0 - locked / nolock;
    assert!(
        (0.05..0.60).contains(&overhead),
        "locking overhead {overhead:.2} out of plausible range"
    );
}

// ---------------------------------------------------------------------------
// Fig. 4(a) — full-stripe writes
// ---------------------------------------------------------------------------

#[test]
fn fig4a_full_stripe_shapes() {
    let all = figures::fig4a(&opts(0.15));
    let raid0 = series(&all, "RAID0");
    let raid1 = series(&all, "RAID1");
    let raid5 = series(&all, "RAID5");
    let npc = series(&all, "RAID5-npc");
    let hybrid = series(&all, "Hybrid");

    // RAID0 scales with servers (paper: still rising at 7).
    assert!(raid0.last() > 2.0 * raid0.at(1.0).unwrap(), "RAID0 must scale with servers");
    // RAID1 ≈ half of RAID0 and the worst of all schemes ("RAID1 has the
    // worst performance of all the schemes").
    for n in [4.0, 5.0, 6.0, 7.0] {
        let r1 = raid1.at(n).unwrap();
        let r0 = raid0.at(n).unwrap();
        assert!(r1 < 0.65 * r0, "n={n}: RAID1 {r1} should be ≈half of RAID0 {r0}");
        assert!(r1 < raid5.at(n).unwrap(), "n={n}: RAID1 worst");
        assert!(r1 < hybrid.at(n).unwrap(), "n={n}: RAID1 worst");
    }
    // RAID1 flattens early ("no significant increase beyond 4 I/O
    // servers"): 4→7 gains little while RAID0 is still growing there.
    let r1_gain = raid1.at(7.0).unwrap() / raid1.at(4.0).unwrap();
    assert!(r1_gain < 1.35, "RAID1 should flatten after 4 servers, gain {r1_gain:.2}");

    // Full-stripe writes: Hybrid behaves exactly like RAID5 ("for this
    // workload, the Hybrid scheme has the same behavior as RAID5").
    for n in [2.0, 4.0, 7.0] {
        let h = hybrid.at(n).unwrap();
        let r5 = raid5.at(n).unwrap();
        assert!((h - r5).abs() / r5 < 0.03, "n={n}: Hybrid {h} == RAID5 {r5}");
    }

    // CSAR ≈ 73% of PVFS at 7 servers (abstract); accept 0.6–0.9.
    let ratio = raid5.at(7.0).unwrap() / raid0.at(7.0).unwrap();
    assert!((0.60..0.90).contains(&ratio), "RAID5/RAID0 at 7 servers = {ratio:.2}");

    // Parity computation costs a modest fraction ("a modest 8%").
    let pc = 1.0 - raid5.at(7.0).unwrap() / npc.at(7.0).unwrap();
    assert!((0.02..0.20).contains(&pc), "parity-compute cost {pc:.2}");
}

// ---------------------------------------------------------------------------
// Fig. 4(b) — one-block writes
// ---------------------------------------------------------------------------

#[test]
fn fig4b_small_write_shapes() {
    let all = figures::fig4b(&opts(0.15));
    let raid1 = series(&all, "RAID1");
    let raid5 = series(&all, "RAID5");
    let hybrid = series(&all, "Hybrid");
    for n in [3.0, 5.0, 7.0] {
        let r1 = raid1.at(n).unwrap();
        let hy = hybrid.at(n).unwrap();
        let r5 = raid5.at(n).unwrap();
        // "the bandwidth observed for the RAID1 and the Hybrid schemes
        // are identical, while the RAID5 bandwidth is lower."
        assert!((r1 - hy).abs() / r1 < 0.02, "n={n}: RAID1 {r1} == Hybrid {hy}");
        assert!(r5 < 0.6 * r1, "n={n}: RAID5 {r5} well below RAID1 {r1}");
    }
}

// ---------------------------------------------------------------------------
// Fig. 5 — ROMIO perf
// ---------------------------------------------------------------------------

#[test]
fn fig5_perf_shapes() {
    let (read, write) = figures::fig5(&opts(0.2));
    // (a) "All the schemes had similar performance for read."
    for x in [2.0, 8.0, 16.0] {
        let vals: Vec<f64> = read.iter().map(|s| s.at(x).unwrap()).collect();
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 1.20, "clients={x}: read spread {min}..{max} too wide");
    }
    // (b) "The write performance of the RAID5 and the Hybrid schemes …
    // are better than RAID1 in this case because the benchmark consists
    // of large writes."
    let raid1 = series(&write, "RAID1");
    let raid5 = series(&write, "RAID5");
    let hybrid = series(&write, "Hybrid");
    let raid0 = series(&write, "RAID0");
    for x in [4.0, 8.0, 16.0] {
        let r1 = raid1.at(x).unwrap();
        assert!(raid5.at(x).unwrap() > 1.15 * r1, "clients={x}: RAID5 beats RAID1");
        assert!(hybrid.at(x).unwrap() > 1.15 * r1, "clients={x}: Hybrid beats RAID1");
        assert!(raid0.at(x).unwrap() >= raid5.at(x).unwrap(), "clients={x}: RAID0 on top");
    }
}

// ---------------------------------------------------------------------------
// Fig. 6 — BTIO Class B
// ---------------------------------------------------------------------------

#[test]
fn fig6_btio_class_b_shapes() {
    // 0.25 keeps enough checkpoint dumps for the dirty backlog and lock
    // contention to build up the way the full run does.
    let fig = figures::fig6(&opts(0.25));
    let init_r5 = series(&fig.initial, "RAID5");
    let init_nolock = series(&fig.initial, "R5-NOLOCK");
    let init_hy = series(&fig.initial, "Hybrid");
    let init_r1 = series(&fig.initial, "RAID1");

    // (a) RAID5 and Hybrid both beat RAID1 at low process counts.
    for p in [4.0, 9.0] {
        assert!(init_r5.at(p).unwrap() > init_r1.at(p).unwrap(), "procs={p}");
        assert!(init_hy.at(p).unwrap() > init_r1.at(p).unwrap(), "procs={p}");
    }
    // RAID5 "drops dramatically" at 25 processes…
    let drop = init_r5.at(25.0).unwrap() / init_r5.at(4.0).unwrap();
    assert!(drop < 0.65, "RAID5 initial-write should collapse by 25 procs: {drop:.2}");
    // …and "most of the drop … is due to the synchronization overhead":
    // the no-lock variant stays far above at 25.
    assert!(
        init_nolock.at(25.0).unwrap() > 1.5 * init_r5.at(25.0).unwrap(),
        "the 25-proc drop must be lock-induced"
    );
    // Hybrid does not collapse.
    assert!(init_hy.at(25.0).unwrap() > 0.6 * init_hy.at(4.0).unwrap());

    // (b) Overwrite of an uncached file: RAID5 falls "much below" the
    // others; the others drop only slightly.
    let over_r5 = series(&fig.overwrite, "RAID5");
    let over_hy = series(&fig.overwrite, "Hybrid");
    let over_r0 = series(&fig.overwrite, "RAID0");
    let over_r1 = series(&fig.overwrite, "RAID1");
    for p in [16.0, 25.0] {
        assert!(
            over_r5.at(p).unwrap() < 0.55 * over_hy.at(p).unwrap(),
            "procs={p}: RAID5 overwrite must be far below Hybrid"
        );
    }
    // And already visibly behind at 9 processes.
    assert!(over_r5.at(9.0).unwrap() < 0.8 * over_hy.at(9.0).unwrap());
    // Slight drop only for RAID0/RAID1/Hybrid.
    assert!(over_r0.at(9.0).unwrap() > 0.9 * series(&fig.initial, "RAID0").at(9.0).unwrap());
    assert!(over_r1.at(9.0).unwrap() > 0.9 * init_r1.at(9.0).unwrap());
    assert!(over_hy.at(9.0).unwrap() > 0.85 * init_hy.at(9.0).unwrap());
}

// ---------------------------------------------------------------------------
// Fig. 7 — BTIO Class C
// ---------------------------------------------------------------------------

#[test]
fn fig7_btio_class_c_shapes() {
    let fig = figures::fig7(&opts(0.25));
    let init_r1 = series(&fig.initial, "RAID1");
    let init_r5 = series(&fig.initial, "RAID5");
    let init_hy = series(&fig.initial, "Hybrid");
    let init_nolock = series(&fig.initial, "R5-NOLOCK");

    // (a) "The performance of RAID-1 is seen to be much lower than the
    // other two redundancy schemes" — server caches overflow at 2× data.
    for p in [9.0, 16.0, 25.0] {
        assert!(
            init_r1.at(p).unwrap() < 0.65 * init_hy.at(p).unwrap(),
            "procs={p}: RAID1 must collapse for Class C"
        );
        assert!(init_r1.at(p).unwrap() < 0.65 * init_r5.at(p).unwrap(), "procs={p}");
    }
    // "The effect of the locking overhead in RAID-5 is less significant
    // for this benchmark."
    let lock_gap = 1.0 - init_r5.at(16.0).unwrap() / init_nolock.at(16.0).unwrap();
    assert!(lock_gap < 0.25, "Class C locking effect should be small: {lock_gap:.2}");

    // (b) Overwrite: "the bandwidth for Hybrid is about 230% of the
    // other two redundancy schemes". Our RAID5 pays a milder overwrite
    // penalty than the paper's (see EXPERIMENTS.md), so the asserted
    // margins are 1.5× over RAID1 and 1.2× over RAID5 at 25 processes,
    // plus a visible RAID5 initial→overwrite drop.
    let over_r1 = series(&fig.overwrite, "RAID1");
    let over_r5 = series(&fig.overwrite, "RAID5");
    let over_hy = series(&fig.overwrite, "Hybrid");
    let hy = over_hy.at(25.0).unwrap();
    assert!(hy > 1.2 * over_r5.at(25.0).unwrap(), "Hybrid beats RAID5 overwrite");
    assert!(hy > 1.5 * over_r1.at(25.0).unwrap(), "Hybrid ≫ RAID1 overwrite");
    assert!(
        over_r5.at(25.0).unwrap() < 0.9 * init_r5.at(25.0).unwrap(),
        "RAID5 must drop from initial to overwrite"
    );
    // Hybrid barely drops.
    assert!(hy > 0.9 * init_hy.at(25.0).unwrap());
}

// ---------------------------------------------------------------------------
// Fig. 8 — application output time
// ---------------------------------------------------------------------------

#[test]
fn fig8_application_shapes() {
    let rows = figures::fig8(&opts(0.15));
    let row = |name: &str| rows.iter().find(|r| r.app == name).expect("missing app");

    // FLASH: small requests — Hybrid tracks RAID1 exactly; RAID5 suffers.
    let flash = row("FLASH I/O");
    assert!((flash.time("Hybrid") - flash.time("RAID1")).abs() < 0.15);
    assert!(flash.time("RAID5") > 1.4 * flash.time("Hybrid"));

    // Hartree-Fock through the kernel module: "the four execution times
    // are not significantly different" (paper: within ~5%; we allow 25%).
    let hf = row("Hartree-Fock");
    for scheme in ["RAID1", "RAID5", "Hybrid"] {
        let t = hf.time(scheme);
        assert!(t < 1.25, "HF {scheme} normalised time {t} should level out");
    }

    // Large-chunk apps: Hybrid clearly beats RAID1 (which pays 2×).
    for app in ["Cactus", "BTIO-B"] {
        let r = row(app);
        assert!(r.time("Hybrid") < 0.9 * r.time("RAID1"), "{app}: Hybrid beats RAID1");
        // Hybrid within 40% of the best scheme (the paper's "comparable
        // or better than the best" claim, loosened: our initial-write
        // RMW reads are nearly free, which flatters RAID5 — see
        // EXPERIMENTS.md).
        let best = r.time("RAID1").min(r.time("RAID5"));
        assert!(r.time("Hybrid") < 1.4 * best, "{app}: Hybrid near the best");
    }
}

// ---------------------------------------------------------------------------
// Table 2 — storage requirement
// ---------------------------------------------------------------------------

#[test]
fn table2_storage_shapes() {
    let rows = figures::table2(&opts(0.15));
    let row = |name: &str| rows.iter().find(|r| r.benchmark == name).expect("missing row");

    for r in &rows {
        let raid0 = r.total("RAID0") as f64;
        let raid1 = r.total("RAID1") as f64;
        let raid5 = r.total("RAID5") as f64;
        let hybrid = r.total("Hybrid") as f64;
        // RAID1 stores exactly 2×; RAID5 on 6 servers ≈ 1.2× (slightly
        // more when phase subsampling leaves holes, whose edge groups
        // carry parity for partially-covered stripes).
        assert!((raid1 / raid0 - 2.0).abs() < 0.01, "{}: RAID1 2x", r.benchmark);
        assert!(
            (1.18..1.35).contains(&(raid5 / raid0)),
            "{}: RAID5 ≈ 1.2x, got {:.3}",
            r.benchmark,
            raid5 / raid0
        );
        // Hybrid never beats RAID5's parsimony.
        assert!(hybrid >= raid5 * 0.999, "{}: Hybrid ≥ RAID5", r.benchmark);
    }

    // "For these benchmarks, the storage used by the Hybrid scheme is
    // generally close to RAID5, and much less than RAID1" — the bulk
    // writers.
    for name in ["BTIO Class B", "BTIO Class C", "CACTUS/BenchIO"] {
        let r = row(name);
        assert!(
            (r.total("Hybrid") as f64) < 0.85 * r.total("RAID1") as f64,
            "{name}: Hybrid well below RAID1"
        );
    }

    // "For the 64KB stripe unit results, the Hybrid scheme had a larger
    // storage requirement than RAID1. For the 16KB cases, the Hybrid
    // scheme needed less storage." — the paper's stripe-unit crossover.
    for procs in ["4", "24"] {
        let k16 = row(&format!("FLASH ({procs} proc, 16K)"));
        let k64 = row(&format!("FLASH ({procs} proc, 64K)"));
        assert!(
            k16.total("Hybrid") < k16.total("RAID1"),
            "FLASH {procs}p @16K: Hybrid below RAID1"
        );
        assert!(
            k64.total("Hybrid") as f64 >= 0.98 * k64.total("RAID1") as f64,
            "FLASH {procs}p @64K: Hybrid at or above RAID1"
        );
        assert!(k64.total("Hybrid") > k16.total("Hybrid"), "larger unit wastes more overflow");
    }

    // Hartree-Fock: 16 KB sequential writes — pure mirroring, Hybrid ≈
    // RAID1 (paper: 299 vs 298 MB).
    let hf = row("Hartree-Fock");
    let ratio = hf.total("Hybrid") as f64 / hf.total("RAID1") as f64;
    assert!((ratio - 1.0).abs() < 0.02, "HF: Hybrid ≈ RAID1, got {ratio:.3}");
}

// ---------------------------------------------------------------------------
// Extensions — degraded reads, stripe-unit sweep, rebuild cost
// ---------------------------------------------------------------------------

#[test]
fn extension_degraded_reads_cost_ordering() {
    let rows = csar_bench::extensions::degraded_reads(&opts(0.2));
    let get = |label: &str| rows.iter().find(|r| r.scheme == label).expect("row");
    for r in &rows {
        assert!(r.degraded_mbps > 0.0 && r.degraded_mbps < r.healthy_mbps, "{}", r.scheme);
    }
    // Mirror fetch (one extra hop) is cheaper than parity reconstruction
    // (n−2 peer reads + parity per lost block).
    assert!(get("RAID1").degraded_mbps > get("RAID5").degraded_mbps);
    // Degradation stays graceful: better than half speed.
    for r in &rows {
        assert!(r.degraded_mbps > 0.5 * r.healthy_mbps, "{} degrades too hard", r.scheme);
    }
}

#[test]
fn extension_stripe_unit_sweep_shapes() {
    let rows = csar_bench::extensions::stripe_unit_sweep(&opts(0.2));
    // Larger units push more of the FLASH mix through the overflow path…
    for pair in rows.windows(2) {
        assert!(
            pair[1].overflow_fraction >= pair[0].overflow_fraction - 1e-9,
            "overflow fraction must grow with the unit"
        );
    }
    // …and storage expansion approaches mirroring (2×) at large units
    // while staying parity-like at small ones (Table 2's crossover,
    // generalised).
    assert!(rows.first().unwrap().expansion < 1.6);
    assert!(rows.last().unwrap().expansion > 1.9);
}

#[test]
fn extension_rebuild_cost_per_scheme() {
    let rows = csar_bench::extensions::rebuild_cost(&opts(0.5));
    let get = |label: &str| rows.iter().find(|r| r.scheme == label).expect("row");
    // RAID1 restores the lost data blocks AND the lost mirror blocks:
    // about 2 × file/n. Parity schemes restore data + parity slots:
    // about file/n + file/(n(n−1)) — cheaper.
    let r1 = get("RAID1");
    let r5 = get("RAID5");
    assert!(r1.restored_bytes > r5.restored_bytes, "RAID1 rebuild moves more bytes");
    // All schemes restore at least the lost data share (file / 4 servers).
    for r in &rows {
        assert!(r.restored_bytes as f64 >= r.file_bytes as f64 / 4.0 * 0.9, "{}", r.scheme);
    }
}

#[test]
fn extension_write_size_sweep_hybrid_is_best_of_both_worlds() {
    // The abstract's claim, swept across access sizes: "our hybrid
    // scheme consistently achieves the best of two worlds — RAID1
    // performance on small writes, and RAID5 efficiency on large
    // writes."
    let rows = csar_bench::extensions::write_size_sweep(&opts(0.25));
    for r in &rows {
        let best = r.of("RAID1").max(r.of("RAID5"));
        assert!(
            r.of("Hybrid") >= 0.95 * best,
            "size {}: Hybrid {} must match the best of RAID1 {} / RAID5 {}",
            r.write_size,
            r.of("Hybrid"),
            r.of("RAID1"),
            r.of("RAID5"),
        );
    }
    // Small writes: Hybrid ≡ RAID1 while RAID5 trails badly.
    let small = &rows[0];
    assert!((small.of("Hybrid") - small.of("RAID1")).abs() < 0.02 * small.of("RAID1"));
    assert!(small.of("RAID5") < 0.6 * small.of("Hybrid"));
    // Large writes: Hybrid clearly above RAID1.
    let large = rows.last().unwrap();
    assert!(large.of("Hybrid") > 1.2 * large.of("RAID1"));
}

#[test]
fn extension_write_buffering_ablation_matches_section_5_2() {
    let rows = csar_bench::extensions::write_buffering_ablation(&opts(0.2));
    let get = |label: &str| rows.iter().find(|r| r.scheme == label).expect("row");
    for r in &rows {
        // Buffering rescues overwrite bandwidth; padding never hurts.
        assert!(r.unbuffered < 0.6 * r.buffered, "{}: unbuffered must collapse", r.scheme);
        assert!(r.padded >= r.buffered - 0.02, "{}: padding never hurts", r.scheme);
    }
    // "For the RAID-0, RAID-1 and Hybrid case, [padding] resulted in
    // about the same bandwidth for the initial write and the overwrite."
    for scheme in ["RAID0", "RAID1", "Hybrid"] {
        assert!(get(scheme).padded > 0.93, "{scheme}: padded overwrite ≈ initial");
    }
    // "for RAID-5, padding the partial block writes did not have any
    // effect" — the RMW pre-reads already cached the blocks.
    let r5 = get("RAID5");
    assert!((r5.padded - r5.buffered).abs() < 0.05, "RAID5: padding is a no-op");
    assert!(r5.buffered < 0.9, "RAID5 overwrite drop persists regardless of padding");
}
