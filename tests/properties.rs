//! End-to-end property tests on the live cluster: randomized write
//! sequences against a flat reference file, with parity consistency and
//! degraded-read equivalence checked after every sequence. Deterministic
//! seeded sweeps (ex-proptest).

use csar::cluster::Cluster;
use csar::core::proto::Scheme;
use csar::core::recovery::parity_consistent;
use csar::store::{SplitMix64, StreamKind};

#[derive(Debug, Clone)]
struct WriteOp {
    off: u64,
    data: Vec<u8>,
}

/// Draw 1–11 writes with offsets below `max_off` and lengths below
/// `max_len`, each filled with a seeded byte pattern.
fn draw_ops(rng: &mut SplitMix64, max_off: u64, max_len: usize) -> Vec<WriteOp> {
    let n = rng.gen_usize(1..12);
    (0..n)
        .map(|_| {
            let off = rng.gen_range(0..max_off);
            let len = rng.gen_usize(1..max_len);
            let seed = rng.next_u64() as u8;
            WriteOp {
                off,
                data: (0..len).map(|i| (i as u8).wrapping_mul(seed).wrapping_add(seed)).collect(),
            }
        })
        .collect()
}

fn pick<T: Copy>(rng: &mut SplitMix64, items: &[T]) -> T {
    items[rng.gen_usize(0..items.len())]
}

fn check_parity(cluster: &Cluster, file: &csar::cluster::File) {
    let meta = file.meta();
    if !meta.scheme.uses_parity() || meta.size == 0 {
        return;
    }
    let ly = meta.layout;
    let unit = ly.stripe_unit;
    for g in 0..meta.size.div_ceil(ly.group_width_bytes()) {
        let mut blocks = Vec::new();
        for b in ly.group_blocks(g) {
            let p = cluster.with_server(ly.home_server(b), |s| {
                s.store().read(meta.fh, StreamKind::Data, ly.data_local_off(b, 0), unit)
            });
            blocks.push(p.as_bytes().expect("real data").to_vec());
        }
        let parity = cluster.with_server(ly.parity_server(g), |s| {
            s.store().read(meta.fh, StreamKind::Parity, ly.parity_local_off(g, 0), unit)
        });
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        assert!(
            parity_consistent(&refs, &parity.as_bytes().expect("real data")),
            "group {g} parity inconsistent under {:?}",
            meta.scheme
        );
    }
}

/// Any sequence of overlapping writes reads back like a flat file, for
/// every scheme, and parity always matches the in-place data.
#[test]
fn random_writes_match_flat_reference() {
    let mut rng = SplitMix64::new(0x9809_0001);
    for case in 0..24 {
        let scheme = pick(&mut rng, &[Scheme::Raid0, Scheme::Raid1, Scheme::Raid5, Scheme::Hybrid]);
        let servers = rng.gen_range(2..6) as u32;
        let unit = pick(&mut rng, &[512u64, 1024, 4096]);
        let ops = draw_ops(&mut rng, 20_000, 6_000);
        let cluster = Cluster::spawn(servers, Default::default());
        let client = cluster.client();
        let file = client.create("prop", scheme, unit).unwrap();
        let mut reference = vec![0u8; 30_000];
        for op in &ops {
            file.write_at(op.off, &op.data).unwrap();
            let end = op.off as usize + op.data.len();
            reference[op.off as usize..end].copy_from_slice(&op.data);
        }
        let size = file.size();
        assert_eq!(
            size,
            ops.iter().map(|o| o.off + o.data.len() as u64).max().unwrap(),
            "case {case}"
        );
        let got = file.read_at(0, size).unwrap();
        assert_eq!(&got[..], &reference[..size as usize], "case {case} ({scheme:?})");
        check_parity(&cluster, &file);
        cluster.shutdown();
    }
}

/// With redundancy, the same holds while ANY single server is down.
#[test]
fn random_writes_survive_any_single_failure() {
    let mut rng = SplitMix64::new(0x9809_0002);
    for case in 0..24 {
        let scheme = pick(&mut rng, &[Scheme::Raid1, Scheme::Raid5, Scheme::Hybrid]);
        let servers = rng.gen_range(2..6) as u32;
        let ops = draw_ops(&mut rng, 10_000, 4_000);
        let cluster = Cluster::spawn(servers, Default::default());
        let client = cluster.client();
        let file = client.create("prop", scheme, 1024).unwrap();
        let mut reference = vec![0u8; 16_000];
        for op in &ops {
            file.write_at(op.off, &op.data).unwrap();
            let end = op.off as usize + op.data.len();
            reference[op.off as usize..end].copy_from_slice(&op.data);
        }
        let size = file.size();
        for kill in 0..servers {
            cluster.fail_server(kill);
            let got = file.read_at(0, size).unwrap();
            assert_eq!(&got[..], &reference[..size as usize], "case {case}: server {kill} down");
            cluster.restore_server(kill);
        }
        cluster.shutdown();
    }
}

/// Rebuild after random writes restores full redundancy: contents
/// survive the rebuild AND a subsequent different failure.
#[test]
fn rebuild_restores_redundancy() {
    let mut rng = SplitMix64::new(0x9809_0003);
    for case in 0..24 {
        let scheme = pick(&mut rng, &[Scheme::Raid1, Scheme::Raid5, Scheme::Hybrid]);
        let ops = draw_ops(&mut rng, 8_000, 3_000);
        let kill = rng.gen_range(0..4) as u32;
        let servers = 4u32;
        let cluster = Cluster::spawn(servers, Default::default());
        let client = cluster.client();
        let file = client.create("prop", scheme, 1024).unwrap();
        let mut reference = vec![0u8; 12_000];
        for op in &ops {
            file.write_at(op.off, &op.data).unwrap();
            let end = op.off as usize + op.data.len();
            reference[op.off as usize..end].copy_from_slice(&op.data);
        }
        let size = file.size();
        cluster.fail_server(kill);
        cluster.rebuild_server(kill).unwrap();
        let got = file.read_at(0, size).unwrap();
        assert_eq!(&got[..], &reference[..size as usize], "case {case}");
        // A different single failure is survivable post-rebuild.
        let other = (kill + 1) % servers;
        cluster.fail_server(other);
        let got = file.read_at(0, size).unwrap();
        assert_eq!(&got[..], &reference[..size as usize], "case {case}");
        cluster.shutdown();
    }
}

/// The §6.7 compaction never changes file contents and never increases
/// overflow storage.
#[test]
fn compaction_preserves_contents_and_reclaims() {
    let mut rng = SplitMix64::new(0x9809_0004);
    for case in 0..24 {
        let ops = draw_ops(&mut rng, 6_000, 2_000);
        let cluster = Cluster::spawn(4, Default::default());
        let client = cluster.client();
        let file = client.create("prop", Scheme::Hybrid, 1024).unwrap();
        let mut reference = vec![0u8; 8_000];
        for op in &ops {
            file.write_at(op.off, &op.data).unwrap();
            let end = op.off as usize + op.data.len();
            reference[op.off as usize..end].copy_from_slice(&op.data);
        }
        let size = file.size();
        let before = file.storage_report().unwrap().aggregate();
        file.compact_overflow().unwrap();
        let after = file.storage_report().unwrap().aggregate();
        assert!(after.overflow <= before.overflow, "case {case}");
        assert!(after.overflow_mirror <= before.overflow_mirror, "case {case}");
        assert_eq!(after.data, before.data, "case {case}");
        assert_eq!(after.parity, before.parity, "case {case}");
        let got = file.read_at(0, size).unwrap();
        assert_eq!(&got[..], &reference[..size as usize], "case {case}");
        cluster.shutdown();
    }
}

/// Degraded writes: RAID1 and Hybrid keep accepting arbitrary writes
/// with a server down; contents are correct via degraded reads and
/// after rebuild.
#[test]
fn degraded_writes_roundtrip() {
    let mut rng = SplitMix64::new(0x9809_0005);
    for case in 0..16 {
        let scheme = pick(&mut rng, &[Scheme::Raid1, Scheme::Hybrid]);
        let before = draw_ops(&mut rng, 8_000, 3_000);
        let during = draw_ops(&mut rng, 8_000, 3_000);
        let kill = rng.gen_range(0..4) as u32;
        let cluster = Cluster::spawn(4, Default::default());
        let client = cluster.client();
        let file = client.create("prop", scheme, 1024).unwrap();
        let mut reference = vec![0u8; 12_000];
        for op in &before {
            file.write_at(op.off, &op.data).unwrap();
            reference[op.off as usize..op.off as usize + op.data.len()].copy_from_slice(&op.data);
        }
        cluster.fail_server(kill);
        for op in &during {
            file.write_at(op.off, &op.data).unwrap();
            reference[op.off as usize..op.off as usize + op.data.len()].copy_from_slice(&op.data);
        }
        let size = file.size();
        // Degraded read sees everything.
        let got = file.read_at(0, size).unwrap();
        assert_eq!(&got[..], &reference[..size as usize], "case {case}");
        // Rebuild, verify healthy, then verify under a different failure
        // (full redundancy restored despite the degraded-mode writes).
        cluster.rebuild_server(kill).unwrap();
        let got = file.read_at(0, size).unwrap();
        assert_eq!(&got[..], &reference[..size as usize], "case {case}");
        check_parity(&cluster, &file);
        let other = (kill + 2) % 4;
        cluster.fail_server(other);
        let got = file.read_at(0, size).unwrap();
        assert_eq!(&got[..], &reference[..size as usize], "case {case}");
        cluster.shutdown();
    }
}
